//! Branch-and-bound over the LP relaxation.
//!
//! Nodes are explored best-first (smallest relaxation bound). Branching
//! splits on the most fractional integer variable; a fix-and-solve rounding
//! heuristic is run periodically to find incumbents early so that pruning
//! kicks in.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::Instant;

use crate::error::MilpError;
use crate::model::{Model, Solution, SolveOptions, SolveStats, Status, VarKind};
use crate::simplex::{LpProblem, LpResult, LpSolution};

/// How often (in nodes) the rounding heuristic is attempted.
const HEURISTIC_EVERY: usize = 64;

struct Node {
    /// Lower bounds for structural variables at this node.
    lb: Vec<f64>,
    /// Upper bounds for structural variables at this node.
    ub: Vec<f64>,
    /// LP bound inherited from the parent (minimize form).
    bound: f64,
    depth: usize,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; we want the smallest bound first, with
        // deeper nodes preferred on ties (diving behaviour).
        other
            .bound
            .partial_cmp(&self.bound)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.depth.cmp(&other.depth))
    }
}

pub(crate) fn solve(model: &Model, opts: &SolveOptions) -> Result<Solution, MilpError> {
    let start = Instant::now();
    let lp = LpProblem::from_model(model);
    let n = model.num_vars();
    let flip = lp.sense_flip();
    let obj_const = model.objective().constant();

    let int_vars: Vec<usize> = (0..n)
        .filter(|&j| !matches!(model.var_kind(crate::Var(j)), VarKind::Continuous))
        .collect();
    // Objective magnitude per variable, used to prioritize branching on
    // decisions that actually move the objective.
    let mut obj_weight = vec![0.0f64; n];
    for (j, c) in model.objective().iter() {
        obj_weight[j] = c.abs();
    }

    // Root bounds with integer bounds tightened to integral values.
    let mut root_lb = Vec::with_capacity(n);
    let mut root_ub = Vec::with_capacity(n);
    for j in 0..n {
        let (mut l, mut u) = model.var_bounds(crate::Var(j));
        if int_vars.binary_search(&j).is_ok() {
            l = l.ceil();
            u = u.floor();
        }
        root_lb.push(l);
        root_ub.push(u);
    }

    let mut stats = SolveStats::default();
    let mut incumbent: Option<(f64, Vec<f64>)> = None; // (min-form obj, x)
    if let Some(ws) = &opts.warm_start {
        if model.is_feasible(ws, opts.int_tol.max(1e-9)) {
            let user_obj = model.objective().eval(ws);
            let min_form = flip * (user_obj - obj_const);
            incumbent = Some((min_form, ws.clone()));
        }
    }

    let mut heap = BinaryHeap::new();
    heap.push(Node {
        lb: root_lb,
        ub: root_ub,
        bound: f64::NEG_INFINITY,
        depth: 0,
    });

    let mut limit_hit = false;
    while let Some(node) = heap.pop() {
        if let Some((inc, _)) = &incumbent {
            // Global bound check: best-first means node.bound is the best
            // remaining bound once the node's own LP refines it; use the
            // parent bound for a quick prune.
            if node.bound >= *inc - opts.gap_tol * inc.abs().max(1.0) {
                stats.best_bound = flip * node.bound + obj_const;
                break; // proven optimal within tolerance
            }
        }
        if let Some(stop) = &opts.stop {
            if stop.load(std::sync::atomic::Ordering::Relaxed) {
                return Err(MilpError::Canceled);
            }
        }
        if stats.nodes >= opts.node_limit {
            limit_hit = true;
            break;
        }
        if let Some(tl) = opts.time_limit {
            if start.elapsed() > tl {
                limit_hit = true;
                break;
            }
        }
        stats.nodes += 1;

        let res = lp.solve_with_bounds(Some((&node.lb, &node.ub)), opts.max_lp_iters)?;
        let sol = match res {
            LpResult::Infeasible => continue,
            LpResult::Unbounded => {
                if incumbent.is_none() && node.depth == 0 {
                    return Err(MilpError::Unbounded);
                }
                continue;
            }
            LpResult::Optimal(s) => s,
        };
        stats.simplex_iters += sol.iterations;

        if let Some((inc, _)) = &incumbent {
            if sol.objective >= *inc - opts.gap_tol * inc.abs().max(1.0) {
                continue; // dominated
            }
        }

        // Find the most fractional integer variable.
        let frac_var = most_fractional(&int_vars, &sol.x, opts.int_tol, &obj_weight);
        match frac_var {
            None => {
                // Integer feasible: new incumbent.
                let rounded = round_integers(&int_vars, &sol.x);
                if better(&incumbent, sol.objective) {
                    incumbent = Some((sol.objective, rounded));
                }
            }
            Some((j, xj)) => {
                // Dive from the root and periodically thereafter: node
                // relaxations only turn into incumbents when naturally
                // integral, which is rare under assignment constraints.
                if stats.nodes == 1 || stats.nodes % HEURISTIC_EVERY == 0 {
                    if let Some((hobj, hx)) =
                        diving_heuristic(&lp, &int_vars, &sol, &node.lb, &node.ub, opts)?
                    {
                        if better(&incumbent, hobj) {
                            incumbent = Some((hobj, hx));
                        }
                    }
                } else if stats.nodes % 16 == 0 {
                    if let Some((hobj, hx)) =
                        rounding_heuristic(&lp, &int_vars, &sol, &node.lb, &node.ub, opts)?
                    {
                        if better(&incumbent, hobj) {
                            incumbent = Some((hobj, hx));
                        }
                    }
                }
                // Branch on x_j <= floor / x_j >= ceil.
                let mut down = Node {
                    lb: node.lb.clone(),
                    ub: node.ub.clone(),
                    bound: sol.objective,
                    depth: node.depth + 1,
                };
                down.ub[j] = xj.floor();
                let mut up = Node {
                    lb: node.lb,
                    ub: node.ub,
                    bound: sol.objective,
                    depth: node.depth + 1,
                };
                up.lb[j] = xj.ceil();
                if down.lb[j] <= down.ub[j] {
                    heap.push(down);
                }
                if up.lb[j] <= up.ub[j] {
                    heap.push(up);
                }
            }
        }
    }

    match incumbent {
        Some((obj, x)) => {
            let status = if limit_hit {
                Status::Feasible
            } else {
                Status::Optimal
            };
            if !limit_hit {
                stats.best_bound = flip * obj + obj_const;
            }
            Ok(Solution {
                values: x,
                objective: flip * obj + obj_const,
                status,
                stats,
            })
        }
        None if limit_hit => Err(MilpError::LimitWithoutSolution),
        None => Err(MilpError::Infeasible),
    }
}

fn better(incumbent: &Option<(f64, Vec<f64>)>, obj: f64) -> bool {
    match incumbent {
        None => true,
        Some((inc, _)) => obj < *inc - 1e-12,
    }
}

/// The fractional integer variable with the highest branching score:
/// fractionality (closeness to `.5`) weighted by the variable's objective
/// magnitude, so that decisions that move the objective are fixed first.
fn most_fractional(
    int_vars: &[usize],
    x: &[f64],
    tol: f64,
    obj_weight: &[f64],
) -> Option<(usize, f64)> {
    let mut best: Option<(usize, f64, f64)> = None; // (j, xj, score)
    for &j in int_vars {
        let xj = x[j];
        if (xj - xj.round()).abs() > tol {
            let fractionality = 0.5 - (xj - xj.floor() - 0.5).abs();
            let score = fractionality * (1.0 + obj_weight[j]);
            match best {
                Some((_, _, s)) if score <= s => {}
                _ => best = Some((j, xj, score)),
            }
        }
    }
    best.map(|(j, xj, _)| (j, xj))
}

/// Dive from an LP solution to an integer-feasible point: repeatedly freeze
/// every already-integral variable and round-fix the least fractional one,
/// re-solving the LP, until everything is integral or the dive dead-ends.
fn diving_heuristic(
    lp: &LpProblem,
    int_vars: &[usize],
    root: &LpSolution,
    node_lb: &[f64],
    node_ub: &[f64],
    opts: &SolveOptions,
) -> Result<Option<(f64, Vec<f64>)>, MilpError> {
    let mut lb = node_lb.to_vec();
    let mut ub = node_ub.to_vec();
    let mut sol = root.clone();
    // Soft dive: fix one fractional variable per round (the one closest to
    // integral), never freezing the rest — equality-constrained groups can
    // then rebalance, which hard freezing would forbid.
    for _round in 0..(2 * int_vars.len()).max(8) {
        let mut frac: Option<(usize, f64, f64)> = None; // (j, xj, dist)
        for &j in int_vars {
            let xj = sol.x[j];
            let dist = (xj - xj.round()).abs();
            if dist > opts.int_tol {
                match frac {
                    Some((_, _, d)) if dist >= d => {}
                    _ => frac = Some((j, xj, dist)),
                }
            }
        }
        let Some((j, xj, _)) = frac else {
            return Ok(Some((sol.objective, round_integers(int_vars, &sol.x))));
        };
        let r = xj.round().clamp(lb[j], ub[j]);
        lb[j] = r;
        ub[j] = r;
        match lp.solve_with_bounds(Some((&lb, &ub)), opts.max_lp_iters)? {
            LpResult::Optimal(s) => sol = s,
            _ => return Ok(None),
        }
    }
    Ok(None)
}

fn round_integers(int_vars: &[usize], x: &[f64]) -> Vec<f64> {
    let mut out = x.to_vec();
    for &j in int_vars {
        out[j] = out[j].round();
    }
    out
}

/// Fix all integers at their rounded LP values and re-solve the LP for the
/// continuous part; returns an incumbent candidate when feasible.
fn rounding_heuristic(
    lp: &LpProblem,
    int_vars: &[usize],
    sol: &LpSolution,
    node_lb: &[f64],
    node_ub: &[f64],
    opts: &SolveOptions,
) -> Result<Option<(f64, Vec<f64>)>, MilpError> {
    let mut lb = node_lb.to_vec();
    let mut ub = node_ub.to_vec();
    for &j in int_vars {
        let r = sol.x[j].round().clamp(lb[j], ub[j]);
        lb[j] = r;
        ub[j] = r;
    }
    match lp.solve_with_bounds(Some((&lb, &ub)), opts.max_lp_iters)? {
        LpResult::Optimal(s) => Ok(Some((s.objective, round_integers(int_vars, &s.x)))),
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use crate::model::{Cmp, Model, Sense, Status};
    use crate::{LinExpr, MilpError};

    #[test]
    fn knapsack_small() {
        // max 10x0 + 13x1 + 7x2 + 4x3, w = [5,7,4,2], cap 10.
        let mut m = Model::new(Sense::Maximize);
        let xs: Vec<_> = (0..4).map(|i| m.add_binary(format!("x{i}"))).collect();
        let mut w = LinExpr::new();
        for (x, wi) in xs.iter().zip([5.0, 7.0, 4.0, 2.0]) {
            w.add_term(*x, wi);
        }
        m.add_constraint(w, Cmp::Le, 10.0);
        let mut obj = LinExpr::new();
        for (x, v) in xs.iter().zip([10.0, 13.0, 7.0, 4.0]) {
            obj.add_term(*x, v);
        }
        m.set_objective(obj);
        let sol = m.solve().unwrap();
        // best: items 1,3 wait — {0,2}: w=9 v=17; {1,3}: w=9 v=17; {0,3}: w=7 v=14;
        // {2,3}: w=6 v=11; {0,2,3}: w=11 invalid; so optimum 17.
        assert_eq!(sol.objective().round() as i64, 17);
        assert_eq!(sol.status(), Status::Optimal);
    }

    #[test]
    fn integer_rounding_not_lp() {
        // max x s.t. 2x <= 5, x integer → 2 (LP gives 2.5).
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_integer("x", 0.0, 100.0);
        m.add_constraint(2.0 * x, Cmp::Le, 5.0);
        m.set_objective(LinExpr::from(x));
        let sol = m.solve().unwrap();
        assert_eq!(sol.value_round(x), 2);
    }

    #[test]
    fn assignment_problem() {
        // 3x3 assignment, cost matrix; LP is integral so B&B is trivial.
        let cost = [[4.0, 1.0, 3.0], [2.0, 0.0, 5.0], [3.0, 2.0, 2.0]];
        let mut m = Model::new(Sense::Minimize);
        let mut vars = Vec::new();
        for i in 0..3 {
            let row: Vec<_> = (0..3).map(|j| m.add_binary(format!("a{i}{j}"))).collect();
            vars.push(row);
        }
        for (i, row) in vars.iter().enumerate() {
            m.add_constraint(LinExpr::sum(row.iter().copied()), Cmp::Eq, 1.0);
            m.add_constraint(LinExpr::sum((0..3).map(|r| vars[r][i])), Cmp::Eq, 1.0);
        }
        let mut obj = LinExpr::new();
        for i in 0..3 {
            for j in 0..3 {
                obj.add_term(vars[i][j], cost[i][j]);
            }
        }
        m.set_objective(obj);
        let sol = m.solve().unwrap();
        // optimum: (0,1)=1, (1,0)=2, (2,2)=2 → 5
        assert_eq!(sol.objective().round() as i64, 5);
    }

    #[test]
    fn infeasible_integer_program() {
        // x + y = 1 with x,y binary and x + y >= 2 → infeasible.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.add_constraint(x + y, Cmp::Eq, 1.0);
        m.add_constraint(x + y, Cmp::Ge, 2.0);
        m.set_objective(x + y);
        assert_eq!(m.solve().unwrap_err(), MilpError::Infeasible);
    }

    #[test]
    fn objective_constant_is_reported() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_integer("x", 1.0, 5.0);
        m.set_objective(x + 100.0);
        let sol = m.solve().unwrap();
        assert_eq!(sol.objective().round() as i64, 101);
    }

    #[test]
    fn mixed_integer_continuous() {
        // min 3x + y, x int, y cont; x + y >= 3.7; y <= 2 → x = 2, y = 1.7.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_integer("x", 0.0, 10.0);
        let y = m.add_continuous("y", 0.0, 2.0);
        m.add_constraint(x + y, Cmp::Ge, 3.7);
        m.set_objective(3.0 * x + y);
        let sol = m.solve().unwrap();
        assert_eq!(sol.value_round(x), 2);
        assert!((sol.value(y) - 1.7).abs() < 1e-6);
    }

    #[test]
    fn matches_brute_force_on_small_grid() {
        // Exhaustively verify a 3-var bounded integer program.
        // max 7a + 5b + 4c s.t. 3a+2b+c <= 9, a+b+2c <= 7, a,b,c in [0,3].
        let brute = {
            let mut best = i64::MIN;
            for a in 0..=3i64 {
                for b in 0..=3i64 {
                    for c in 0..=3i64 {
                        if 3 * a + 2 * b + c <= 9 && a + b + 2 * c <= 7 {
                            best = best.max(7 * a + 5 * b + 4 * c);
                        }
                    }
                }
            }
            best
        };
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_integer("a", 0.0, 3.0);
        let b = m.add_integer("b", 0.0, 3.0);
        let c = m.add_integer("c", 0.0, 3.0);
        m.add_constraint(3.0 * a + 2.0 * b + c, Cmp::Le, 9.0);
        m.add_constraint(a + b + 2.0 * c, Cmp::Le, 7.0);
        m.set_objective(7.0 * a + 5.0 * b + 4.0 * c);
        let sol = m.solve().unwrap();
        assert_eq!(sol.objective().round() as i64, brute);
        // And the reported point is feasible.
        assert!(m.is_feasible(sol.values(), 1e-6));
    }

    #[test]
    fn unbounded_integer_program() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_integer("x", 0.0, f64::INFINITY);
        m.add_constraint(LinExpr::from(x), Cmp::Ge, 0.0);
        m.set_objective(LinExpr::from(x));
        assert_eq!(m.solve().unwrap_err(), MilpError::Unbounded);
    }

    #[test]
    fn pre_set_stop_flag_cancels() {
        use std::sync::atomic::AtomicBool;
        use std::sync::Arc;
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_integer("x", 0.0, 100.0);
        m.add_constraint(2.0 * x, Cmp::Le, 5.0);
        m.set_objective(LinExpr::from(x));
        let opts = crate::SolveOptions {
            stop: Some(Arc::new(AtomicBool::new(true))),
            ..Default::default()
        };
        assert_eq!(m.solve_with(&opts).unwrap_err(), MilpError::Canceled);
    }

    #[test]
    fn node_limit_returns_feasible_or_error() {
        let mut m = Model::new(Sense::Maximize);
        // A small knapsack; with node_limit 1 we may only get the heuristic
        // incumbent, which must still be feasible.
        let xs: Vec<_> = (0..6).map(|i| m.add_binary(format!("x{i}"))).collect();
        let mut w = LinExpr::new();
        let mut obj = LinExpr::new();
        for (i, x) in xs.iter().enumerate() {
            w.add_term(*x, (i + 1) as f64);
            obj.add_term(*x, (2 * i + 1) as f64);
        }
        m.add_constraint(w, Cmp::Le, 8.0);
        m.set_objective(obj);
        let opts = crate::SolveOptions {
            node_limit: 1,
            ..Default::default()
        };
        match m.solve_with(&opts) {
            Ok(sol) => assert!(m.is_feasible(sol.values(), 1e-6)),
            Err(MilpError::LimitWithoutSolution) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }
}
