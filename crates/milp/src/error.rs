//! Solver error type.

use std::fmt;

/// Errors reported by the MILP solver.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MilpError {
    /// The problem has no feasible solution.
    Infeasible,
    /// The objective is unbounded in the optimization direction.
    Unbounded,
    /// A node/time limit was reached before any integer-feasible solution
    /// was found.
    LimitWithoutSolution,
    /// The solve was cancelled through [`crate::SolveOptions::stop`]
    /// (portfolio racing: the other backend finished first).
    Canceled,
    /// A variable index did not belong to the model.
    BadVar(usize),
    /// The model is malformed (e.g. a variable with `lb > ub`, or a
    /// non-finite coefficient).
    BadModel(String),
    /// The simplex failed to converge within its iteration budget,
    /// indicating a numerical problem.
    Numerical(String),
}

impl fmt::Display for MilpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MilpError::Infeasible => write!(f, "problem is infeasible"),
            MilpError::Unbounded => write!(f, "problem is unbounded"),
            MilpError::LimitWithoutSolution => {
                write!(f, "limit reached before a feasible solution was found")
            }
            MilpError::Canceled => write!(f, "solve was cancelled by its stop flag"),
            MilpError::BadVar(i) => write!(f, "variable index {i} is not in the model"),
            MilpError::BadModel(s) => write!(f, "malformed model: {s}"),
            MilpError::Numerical(s) => write!(f, "numerical failure: {s}"),
        }
    }
}

impl std::error::Error for MilpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync_static() {
        fn check<T: Send + Sync + 'static>() {}
        check::<MilpError>();
    }

    #[test]
    fn display_messages_are_lowercase() {
        for e in [
            MilpError::Infeasible,
            MilpError::Unbounded,
            MilpError::LimitWithoutSolution,
            MilpError::BadVar(3),
        ] {
            assert!(e.to_string().starts_with(char::is_lowercase));
        }
    }
}
