//! Linear expressions over model variables.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// A handle to a decision variable in a [`crate::Model`].
///
/// `Var`s are cheap indices; they are only meaningful with the model that
/// created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) usize);

impl Var {
    /// The variable's index within its model (stable across solves).
    #[inline]
    pub fn index(self) -> usize {
        self.0
    }
}

/// A linear expression `Σ coeff·var + constant`.
///
/// Built with ordinary arithmetic:
///
/// ```
/// use cosa_milp::{Model, Sense};
/// let mut m = Model::new(Sense::Minimize);
/// let x = m.add_binary("x");
/// let y = m.add_binary("y");
/// let e = 2.0 * x - y + 1.0;
/// assert_eq!(e.coeff(x), 2.0);
/// assert_eq!(e.coeff(y), -1.0);
/// assert_eq!(e.constant(), 1.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinExpr {
    terms: BTreeMap<usize, f64>,
    constant: f64,
}

impl LinExpr {
    /// The zero expression.
    pub fn new() -> LinExpr {
        LinExpr::default()
    }

    /// A constant expression.
    pub fn constant_expr(c: f64) -> LinExpr {
        LinExpr {
            terms: BTreeMap::new(),
            constant: c,
        }
    }

    /// Sum of `vars`, each with coefficient 1.
    pub fn sum<I: IntoIterator<Item = Var>>(vars: I) -> LinExpr {
        let mut e = LinExpr::new();
        for v in vars {
            e.add_term(v, 1.0);
        }
        e
    }

    /// Add `coeff·var` to the expression (accumulating with any existing
    /// term for the same variable).
    pub fn add_term(&mut self, var: Var, coeff: f64) -> &mut Self {
        let entry = self.terms.entry(var.0).or_insert(0.0);
        *entry += coeff;
        if entry.abs() < 1e-300 {
            self.terms.remove(&var.0);
        }
        self
    }

    /// The coefficient of `var` (0 if absent).
    pub fn coeff(&self, var: Var) -> f64 {
        self.terms.get(&var.0).copied().unwrap_or(0.0)
    }

    /// The constant term.
    pub fn constant(&self) -> f64 {
        self.constant
    }

    /// Iterate over `(variable index, coefficient)` pairs in index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.terms.iter().map(|(i, c)| (*i, *c))
    }

    /// Number of variables with nonzero coefficients.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// `true` if the expression has no variable terms.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }

    /// Evaluate the expression given a dense assignment of variable values.
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.constant + self.iter().map(|(i, c)| c * values[i]).sum::<f64>()
    }

    /// Largest variable index referenced, if any.
    pub(crate) fn max_index(&self) -> Option<usize> {
        self.terms.keys().next_back().copied()
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (i, c) in self.iter() {
            if first {
                write!(f, "{c}·x{i}")?;
                first = false;
            } else if c < 0.0 {
                write!(f, " - {}·x{i}", -c)?;
            } else {
                write!(f, " + {c}·x{i}")?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant != 0.0 {
            if self.constant < 0.0 {
                write!(f, " - {}", -self.constant)?;
            } else {
                write!(f, " + {}", self.constant)?;
            }
        }
        Ok(())
    }
}

impl From<Var> for LinExpr {
    fn from(v: Var) -> LinExpr {
        let mut e = LinExpr::new();
        e.add_term(v, 1.0);
        e
    }
}

impl From<f64> for LinExpr {
    fn from(c: f64) -> LinExpr {
        LinExpr::constant_expr(c)
    }
}

// --- operator overloads -------------------------------------------------

impl Add for LinExpr {
    type Output = LinExpr;
    fn add(mut self, rhs: LinExpr) -> LinExpr {
        for (i, c) in rhs.iter() {
            self.add_term(Var(i), c);
        }
        self.constant += rhs.constant;
        self
    }
}

impl AddAssign for LinExpr {
    fn add_assign(&mut self, rhs: LinExpr) {
        for (i, c) in rhs.iter() {
            self.add_term(Var(i), c);
        }
        self.constant += rhs.constant;
    }
}

impl Sub for LinExpr {
    type Output = LinExpr;
    fn sub(self, rhs: LinExpr) -> LinExpr {
        self + (-rhs)
    }
}

impl SubAssign for LinExpr {
    fn sub_assign(&mut self, rhs: LinExpr) {
        *self += -rhs;
    }
}

impl Neg for LinExpr {
    type Output = LinExpr;
    fn neg(mut self) -> LinExpr {
        for c in self.terms.values_mut() {
            *c = -*c;
        }
        self.constant = -self.constant;
        self
    }
}

impl Mul<f64> for LinExpr {
    type Output = LinExpr;
    fn mul(mut self, k: f64) -> LinExpr {
        for c in self.terms.values_mut() {
            *c *= k;
        }
        self.constant *= k;
        self
    }
}

impl Mul<LinExpr> for f64 {
    type Output = LinExpr;
    fn mul(self, e: LinExpr) -> LinExpr {
        e * self
    }
}

macro_rules! impl_var_ops {
    () => {
        impl Add<Var> for Var {
            type Output = LinExpr;
            fn add(self, rhs: Var) -> LinExpr {
                LinExpr::from(self) + LinExpr::from(rhs)
            }
        }
        impl Add<LinExpr> for Var {
            type Output = LinExpr;
            fn add(self, rhs: LinExpr) -> LinExpr {
                LinExpr::from(self) + rhs
            }
        }
        impl Add<Var> for LinExpr {
            type Output = LinExpr;
            fn add(self, rhs: Var) -> LinExpr {
                self + LinExpr::from(rhs)
            }
        }
        impl Add<f64> for LinExpr {
            type Output = LinExpr;
            fn add(mut self, rhs: f64) -> LinExpr {
                self.constant += rhs;
                self
            }
        }
        impl Add<f64> for Var {
            type Output = LinExpr;
            fn add(self, rhs: f64) -> LinExpr {
                LinExpr::from(self) + rhs
            }
        }
        impl Sub<Var> for Var {
            type Output = LinExpr;
            fn sub(self, rhs: Var) -> LinExpr {
                LinExpr::from(self) - LinExpr::from(rhs)
            }
        }
        impl Sub<Var> for LinExpr {
            type Output = LinExpr;
            fn sub(self, rhs: Var) -> LinExpr {
                self - LinExpr::from(rhs)
            }
        }
        impl Sub<LinExpr> for Var {
            type Output = LinExpr;
            fn sub(self, rhs: LinExpr) -> LinExpr {
                LinExpr::from(self) - rhs
            }
        }
        impl Sub<f64> for LinExpr {
            type Output = LinExpr;
            fn sub(mut self, rhs: f64) -> LinExpr {
                self.constant -= rhs;
                self
            }
        }
        impl Mul<Var> for f64 {
            type Output = LinExpr;
            fn mul(self, v: Var) -> LinExpr {
                let mut e = LinExpr::new();
                e.add_term(v, self);
                e
            }
        }
        impl Neg for Var {
            type Output = LinExpr;
            fn neg(self) -> LinExpr {
                -LinExpr::from(self)
            }
        }
    };
}
impl_var_ops!();

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> Var {
        Var(i)
    }

    #[test]
    fn build_and_eval() {
        let e = 2.0 * v(0) + 3.0 * v(1) - v(0) + 5.0;
        assert_eq!(e.coeff(v(0)), 1.0);
        assert_eq!(e.coeff(v(1)), 3.0);
        assert_eq!(e.eval(&[2.0, 4.0]), 2.0 + 12.0 + 5.0);
    }

    #[test]
    fn cancelling_terms_vanish() {
        let e = v(3) - v(3);
        assert!(e.is_empty());
        assert_eq!(e.coeff(v(3)), 0.0);
    }

    #[test]
    fn sum_helper() {
        let e = LinExpr::sum([v(0), v(1), v(2)]);
        assert_eq!(e.len(), 3);
        assert_eq!(e.eval(&[1.0, 1.0, 1.0]), 3.0);
    }

    #[test]
    fn scalar_mul_distributes() {
        let e = (v(0) + v(1) + 1.0) * 3.0;
        assert_eq!(e.coeff(v(0)), 3.0);
        assert_eq!(e.constant(), 3.0);
    }

    #[test]
    fn neg_flips_everything() {
        let e = -(2.0 * v(0) + 1.0);
        assert_eq!(e.coeff(v(0)), -2.0);
        assert_eq!(e.constant(), -1.0);
    }

    #[test]
    fn display_is_readable() {
        let e = 2.0 * v(0) - 1.5 * v(2) + 4.0;
        let s = e.to_string();
        assert!(s.contains("x0"));
        assert!(s.contains("x2"));
        assert!(s.contains('4'));
    }

    #[test]
    fn display_constant_only() {
        assert_eq!(LinExpr::constant_expr(7.0).to_string(), "7");
    }
}
