//! Property-based verification of the MILP solver against brute force.
//!
//! Small random integer programs are solved both by `cosa-milp` and by
//! exhaustive enumeration of the integer grid; the solver must agree on
//! feasibility and on the optimal objective, and any solution it reports
//! must satisfy the model.

use cosa_milp::{Cmp, LinExpr, MilpError, Model, Sense};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RandomIp {
    num_vars: usize,
    ub: i64,
    coeffs: Vec<Vec<i64>>, // per-constraint coefficients
    rhs: Vec<i64>,
    cmps: Vec<u8>,
    obj: Vec<i64>,
    maximize: bool,
}

fn random_ip() -> impl Strategy<Value = RandomIp> {
    (2usize..=4, 1i64..=3, 1usize..=3, any::<bool>()).prop_flat_map(
        |(num_vars, ub, num_cons, maximize)| {
            let coeffs =
                prop::collection::vec(prop::collection::vec(-4i64..=4, num_vars), num_cons);
            let rhs = prop::collection::vec(-6i64..=12, num_cons);
            let cmps = prop::collection::vec(0u8..=2, num_cons);
            let obj = prop::collection::vec(-5i64..=5, num_vars);
            (coeffs, rhs, cmps, obj).prop_map(move |(coeffs, rhs, cmps, obj)| RandomIp {
                num_vars,
                ub,
                coeffs,
                rhs,
                cmps,
                obj,
                maximize,
            })
        },
    )
}

/// Brute-force optimum over the integer grid `[0, ub]^n`, or `None` if
/// infeasible.
fn brute_force(ip: &RandomIp) -> Option<i64> {
    let mut best: Option<i64> = None;
    let n = ip.num_vars;
    let base = (ip.ub + 1) as usize;
    let total = base.pow(n as u32);
    for idx in 0..total {
        let mut x = vec![0i64; n];
        let mut rem = idx;
        for xi in x.iter_mut() {
            *xi = (rem % base) as i64;
            rem /= base;
        }
        let ok = ip
            .coeffs
            .iter()
            .zip(&ip.rhs)
            .zip(&ip.cmps)
            .all(|((row, rhs), cmp)| {
                let lhs: i64 = row.iter().zip(&x).map(|(a, b)| a * b).sum();
                match cmp {
                    0 => lhs <= *rhs,
                    1 => lhs >= *rhs,
                    _ => lhs == *rhs,
                }
            });
        if ok {
            let val: i64 = ip.obj.iter().zip(&x).map(|(a, b)| a * b).sum();
            best = Some(match best {
                None => val,
                Some(b) if ip.maximize => b.max(val),
                Some(b) => b.min(val),
            });
        }
    }
    best
}

fn build_model(ip: &RandomIp) -> Model {
    let sense = if ip.maximize {
        Sense::Maximize
    } else {
        Sense::Minimize
    };
    let mut m = Model::new(sense);
    let vars: Vec<_> = (0..ip.num_vars)
        .map(|i| m.add_integer(format!("x{i}"), 0.0, ip.ub as f64))
        .collect();
    for ((row, rhs), cmp) in ip.coeffs.iter().zip(&ip.rhs).zip(&ip.cmps) {
        let mut e = LinExpr::new();
        for (v, a) in vars.iter().zip(row) {
            e.add_term(*v, *a as f64);
        }
        let cmp = match cmp {
            0 => Cmp::Le,
            1 => Cmp::Ge,
            _ => Cmp::Eq,
        };
        m.add_constraint(e, cmp, *rhs as f64);
    }
    let mut obj = LinExpr::new();
    for (v, a) in vars.iter().zip(&ip.obj) {
        obj.add_term(*v, *a as f64);
    }
    m.set_objective(obj);
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn solver_matches_brute_force(ip in random_ip()) {
        let expected = brute_force(&ip);
        let model = build_model(&ip);
        match (model.solve(), expected) {
            (Ok(sol), Some(best)) => {
                prop_assert!(
                    (sol.objective() - best as f64).abs() < 1e-6,
                    "solver found {} but brute force found {best}",
                    sol.objective()
                );
                prop_assert!(model.is_feasible(sol.values(), 1e-6));
            }
            (Err(MilpError::Infeasible), None) => {}
            (got, want) => {
                prop_assert!(false, "solver {got:?} vs brute force {want:?}");
            }
        }
    }

    #[test]
    fn lp_relaxation_bounds_integer_optimum(ip in random_ip()) {
        // The LP relaxation must never be worse than the integer optimum.
        if let Some(best) = brute_force(&ip) {
            let model = build_model(&ip);
            let lp = cosa_milp::simplex::LpProblem::from_model(&model);
            if let Ok(cosa_milp::simplex::LpResult::Optimal(sol)) = lp.solve(20_000) {
                // LP objective is minimize-form; convert.
                let lp_obj = lp.sense_flip() * sol.objective;
                if ip.maximize {
                    prop_assert!(lp_obj >= best as f64 - 1e-6, "lp {lp_obj} < int {best}");
                } else {
                    prop_assert!(lp_obj <= best as f64 + 1e-6, "lp {lp_obj} > int {best}");
                }
            }
        }
    }
}
