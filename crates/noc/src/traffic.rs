//! Deriving NoC traffic from a schedule: which tensors move, to which PEs,
//! how often.
//!
//! The temporal loops at the NoC and DRAM levels form an odometer. At each
//! step, the tiles that must be re-sent are exactly those of tensors with a
//! relevant loop inside the carry chain — the paper encodes the same
//! structure as the `Y` prefix indicator of Eq. 9. Steps therefore fall
//! into `T+1` *iteration types* (one per carry-chain length plus the
//! startup iteration), each with an exact occurrence count and a fixed
//! transfer set.

use cosa_spec::{Arch, DataTensor, Layer, Schedule};

use crate::mesh::PacketSpec;

/// One class of loop iterations with identical NoC/DRAM transfer sets.
#[derive(Debug, Clone, PartialEq)]
pub struct IterationType {
    /// How many iterations of the layer fall in this class (fractional
    /// after the output fresh/revisit split).
    pub count: f64,
    /// Tensors whose PE tiles are re-sent over the NoC this iteration.
    pub resend: [bool; DataTensor::COUNT],
    /// Whether previously-evicted partial sums are read back down.
    pub oa_readback: bool,
    /// Whether PEs write their output tiles back to the global buffer.
    pub oa_writeback: bool,
    /// DRAM bytes moved for this iteration (weight streaming + global
    /// buffer refills + output spills).
    pub dram_bytes: f64,
}

/// The complete traffic characterization of a schedule.
#[derive(Debug, Clone)]
pub struct TrafficPlan {
    /// Iteration classes with exact counts.
    pub types: Vec<IterationType>,
    /// Temporal iterations below the NoC level = PE busy cycles per
    /// iteration.
    pub compute_per_iter: u64,
    /// Downstream packet sets per tensor (multicast groups precomputed).
    pub down_packets: [Vec<PacketSpec>; DataTensor::COUNT],
    /// Output writeback packets (one per used PE).
    pub up_packets: Vec<PacketSpec>,
    /// Number of PEs with work mapped to them.
    pub pes_used: usize,
    /// Per-PE tile bytes for each tensor.
    pub tile_bytes: [u64; DataTensor::COUNT],
}

impl TrafficPlan {
    /// Characterize `schedule` (assumed valid) on `arch` for `layer`.
    pub fn build(layer: &Layer, arch: &Arch, schedule: &Schedule) -> TrafficPlan {
        let noc = arch.noc_level();
        let gb_node = 0usize;
        let mesh_x = arch.noc().mesh_x;

        // --- spatial layout: linearize the NoC-level spatial loops -----
        let spatial: Vec<(cosa_spec::Dim, u64)> = schedule.levels()[noc]
            .loops
            .iter()
            .filter(|l| l.spatial)
            .map(|l| (l.dim, l.bound))
            .collect();
        let pes_used: usize = spatial.iter().map(|(_, b)| *b as usize).product();

        // Per-PE tile bytes (exact halo for inputs).
        let below = schedule.tile_below(noc);
        let mut tile_bytes = [0u64; DataTensor::COUNT];
        for v in DataTensor::ALL {
            tile_bytes[v.index()] = v.tile_elements(&below, layer) * arch.precision(v);
        }
        let flit = arch.noc().flit_bytes.max(1);
        let flits_of = |bytes: u64| bytes.div_ceil(flit) + 1; // +1 header

        // Multicast groups: PEs sharing identical relevant spatial
        // coordinates receive the same tile.
        let mut down_packets: [Vec<PacketSpec>; 3] = [Vec::new(), Vec::new(), Vec::new()];
        for v in DataTensor::ALL {
            let mut groups: std::collections::BTreeMap<Vec<u64>, Vec<usize>> =
                std::collections::BTreeMap::new();
            for lin in 0..pes_used.max(1) {
                // Mixed-radix digits of the spatial index.
                let mut rem = lin as u64;
                let mut key = Vec::new();
                for (d, b) in &spatial {
                    let digit = rem % b;
                    rem /= b;
                    if v.relevant_to(*d) {
                        key.push(digit);
                    }
                }
                // PE linear index → mesh node (row-major).
                let node = lin % (mesh_x * arch.noc().mesh_y);
                groups.entry(key).or_default().push(node);
            }
            for (_, mut dests) in groups {
                dests.dedup();
                down_packets[v.index()].push(PacketSpec {
                    src: gb_node,
                    dests,
                    flits: flits_of(tile_bytes[v.index()]),
                });
            }
        }
        // Outputs leaving a PE are 24-bit partial sums while reduction
        // loops (over R, S, C) remain at or above the NoC level; once the
        // sum is complete they quantize to the activation width.
        let reduction_above_pe = schedule.flat_loops().iter().any(|(lvl, lp)| {
            *lvl >= noc && !DataTensor::Outputs.relevant_to(lp.dim) && lp.bound > 1
        });
        let oa_up_bytes = {
            let elems = DataTensor::Outputs.tile_elements(&below, layer);
            let prec = if reduction_above_pe {
                arch.precision(DataTensor::Outputs)
            } else {
                arch.precision(DataTensor::Inputs)
            };
            elems * prec
        };
        let up_packets: Vec<PacketSpec> = (0..pes_used.max(1))
            .map(|lin| PacketSpec {
                src: lin % (mesh_x * arch.noc().mesh_y),
                dests: vec![gb_node],
                flits: flits_of(oa_up_bytes),
            })
            .collect();

        // --- odometer positions: NoC temporal loops (inner) then DRAM ---
        let seq: Vec<(cosa_spec::Dim, u64)> = schedule.levels()[noc]
            .loops
            .iter()
            .rev()
            .filter(|l| !l.spatial)
            .map(|l| (l.dim, l.bound))
            .chain(
                schedule.levels()[arch.dram_level()]
                    .loops
                    .iter()
                    .rev()
                    .filter(|l| !l.spatial)
                    .map(|l| (l.dim, l.bound)),
            )
            .collect();
        let t_noc = schedule.levels()[noc]
            .loops
            .iter()
            .filter(|l| !l.spatial)
            .count();
        let n_total: u64 = seq.iter().map(|(_, b)| b).product();

        // DRAM byte helpers. Output tiles spilled past the global buffer
        // quantize to activation width once no reduction loop remains at
        // the DRAM level.
        let gb_tile = schedule.stored_tile(noc);
        let reduction_at_dram = schedule.levels()[arch.dram_level()]
            .loops
            .iter()
            .any(|lp| !DataTensor::Outputs.relevant_to(lp.dim) && lp.bound > 1);
        let gb_bytes = |v: DataTensor| -> f64 {
            let prec = if v == DataTensor::Outputs && !reduction_at_dram {
                arch.precision(DataTensor::Inputs)
            } else {
                arch.precision(v)
            };
            (v.tile_elements(&gb_tile, layer) * prec) as f64
        };
        // Weights stream from DRAM: one copy of each distinct tile.
        let w_dram_bytes: f64 = down_packets[DataTensor::Weights.index()].len() as f64
            * tile_bytes[DataTensor::Weights.index()] as f64;

        // --- iteration types ------------------------------------------
        let mut types = Vec::new();
        // Startup iteration: everything is sent once, no writeback yet.
        types.push(IterationType {
            count: 1.0,
            resend: [true, true, false],
            oa_readback: false,
            oa_writeback: false,
            dram_bytes: w_dram_bytes + gb_bytes(DataTensor::Inputs) + gb_bytes(DataTensor::Outputs),
        });

        let mut oa_changes = 0.0f64;
        let mut raw = Vec::new();
        let mut prefix: u64 = 1;
        for (z, (dim_z, b_z)) in seq.iter().enumerate() {
            let _ = dim_z;
            prefix *= b_z;
            let count = (n_total / prefix) as f64 * (b_z - 1) as f64;
            if count == 0.0 {
                continue;
            }
            let mut resend = [false; 3];
            for v in DataTensor::ALL {
                resend[v.index()] = seq[..=z].iter().any(|(d, _)| v.relevant_to(*d));
            }
            let mut dram = 0.0;
            if resend[DataTensor::Weights.index()] {
                dram += w_dram_bytes;
            }
            for v in [DataTensor::Inputs, DataTensor::Outputs] {
                let refill = z >= t_noc && seq[t_noc..=z].iter().any(|(d, _)| v.relevant_to(*d));
                if refill {
                    dram += gb_bytes(v);
                    if v == DataTensor::Outputs {
                        dram += gb_bytes(v); // spill + refill
                    }
                }
            }
            if resend[DataTensor::Outputs.index()] {
                oa_changes += count;
            }
            raw.push(IterationType {
                count,
                resend,
                oa_readback: false,
                oa_writeback: resend[DataTensor::Outputs.index()],
                dram_bytes: dram,
            });
        }

        // Fresh vs revisited output tiles: a revisited tile must be read
        // back before accumulation continues. The exact schedule of
        // revisits depends on outer odometer digits; we split each
        // OA-changing class by the global revisit fraction.
        let oa_distinct: f64 = seq
            .iter()
            .filter(|(d, _)| DataTensor::Outputs.relevant_to(*d))
            .map(|(_, b)| *b as f64)
            .product();
        let oa_fills = oa_changes + 1.0;
        let revisit_frac = ((oa_fills - oa_distinct) / oa_fills).max(0.0);
        for t in raw {
            if t.oa_writeback && revisit_frac > 0.0 {
                let mut with_rb = t.clone();
                with_rb.count = t.count * revisit_frac;
                with_rb.oa_readback = true;
                let down_oa = gb_bytes(DataTensor::Outputs);
                with_rb.dram_bytes += down_oa * 0.0; // GB-resident readbacks
                let mut without = t;
                without.count *= 1.0 - revisit_frac;
                if with_rb.count > 0.0 {
                    types.push(with_rb);
                }
                if without.count > 0.0 {
                    types.push(without);
                }
            } else {
                types.push(t);
            }
        }

        TrafficPlan {
            types,
            compute_per_iter: schedule.temporal_product_below(noc),
            down_packets,
            up_packets,
            pes_used: pes_used.max(1),
            tile_bytes,
        }
    }

    /// Total loop iterations across all types (equals the product of the
    /// NoC- and DRAM-level temporal bounds).
    pub fn total_iterations(&self) -> f64 {
        self.types.iter().map(|t| t.count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosa_spec::{Dim, Loop};

    fn arch() -> Arch {
        Arch::simba_baseline()
    }

    #[test]
    fn counts_sum_to_total_iterations() {
        let arch = arch();
        let layer = Layer::conv("t", 1, 1, 4, 1, 8, 16, 1, 1, 1);
        let mut s = Schedule::new(arch.num_levels());
        s.push(arch.noc_level(), Loop::spatial(Dim::K, 16));
        s.push(arch.noc_level(), Loop::temporal(Dim::C, 2));
        s.push(arch.noc_level(), Loop::temporal(Dim::P, 4)); // inner
        s.push(arch.dram_level(), Loop::temporal(Dim::C, 4));
        assert!(s.is_valid(&layer, &arch));
        let plan = TrafficPlan::build(&layer, &arch, &s);
        // N_total = 2*4*4 = 32 iterations.
        assert!((plan.total_iterations() - 32.0).abs() < 1e-9);
    }

    #[test]
    fn weight_multicast_groups_by_relevance() {
        // P=4 and K=4 spatial: weights are unicast across K (4 groups),
        // multicast across P (4 PEs per group).
        let arch = arch();
        let layer = Layer::conv("t", 1, 1, 4, 1, 4, 4, 1, 1, 1);
        let mut s = Schedule::new(arch.num_levels());
        s.push(arch.noc_level(), Loop::spatial(Dim::P, 4));
        s.push(arch.noc_level(), Loop::spatial(Dim::K, 4));
        s.push(arch.dram_level(), Loop::temporal(Dim::C, 4));
        let plan = TrafficPlan::build(&layer, &arch, &s);
        let w = &plan.down_packets[DataTensor::Weights.index()];
        assert_eq!(w.len(), 4, "one weight packet per K group");
        assert!(
            w.iter().all(|p| p.dests.len() == 4),
            "each multicast to 4 PEs"
        );
        // Inputs are irrelevant to K: 4 groups of 4 by symmetry.
        let ia = &plan.down_packets[DataTensor::Inputs.index()];
        assert_eq!(ia.len(), 4);
        // Outputs unicast per PE? P and K both relevant → 16 groups.
        let oa = &plan.down_packets[DataTensor::Outputs.index()];
        assert_eq!(oa.len(), 16);
    }

    #[test]
    fn inner_irrelevant_loop_reuses_weights() {
        // NoC temporal: P inner, C outer → weight resends only on C steps.
        let arch = arch();
        let layer = Layer::conv("t", 1, 1, 4, 1, 4, 1, 1, 1, 1);
        let mut s = Schedule::new(arch.num_levels());
        s.push(arch.noc_level(), Loop::temporal(Dim::C, 4));
        s.push(arch.noc_level(), Loop::temporal(Dim::P, 4)); // inner
        let plan = TrafficPlan::build(&layer, &arch, &s);
        let w_idx = DataTensor::Weights.index();
        let resend_w: f64 = plan
            .types
            .iter()
            .filter(|t| t.resend[w_idx])
            .map(|t| t.count)
            .sum();
        // 16 iterations; weights change only when C advances: 3 carry steps
        // plus startup = 4 sends.
        assert!((resend_w - 4.0).abs() < 1e-9, "weight sends {resend_w}");
    }

    #[test]
    fn startup_type_sends_everything() {
        let arch = arch();
        let layer = Layer::conv("t", 1, 1, 2, 1, 2, 2, 1, 1, 1);
        let mut s = Schedule::new(arch.num_levels());
        for (d, b) in [(Dim::P, 2), (Dim::C, 2), (Dim::K, 2)] {
            s.push(arch.dram_level(), Loop::temporal(d, b));
        }
        let plan = TrafficPlan::build(&layer, &arch, &s);
        let t0 = &plan.types[0];
        assert_eq!(t0.count, 1.0);
        assert!(t0.resend[0] && t0.resend[1]);
        assert!(t0.dram_bytes > 0.0);
    }
}
