//! # cosa-noc
//!
//! A cycle-level network-on-chip simulator for spatial DNN accelerators —
//! the second evaluation platform of the paper (Sec. IV-A), standing in for
//! the Matchlib-router + DRAMSim2 testbed.
//!
//! The simulator models:
//!
//! * a resizable 2-D mesh of input-buffered wormhole routers with X-Y
//!   routing and tree **multicast** (Table V, *Network* column);
//! * a global-buffer/DRAM interface node injecting tensor tiles into the
//!   mesh and collecting output partial sums (with reduction traffic from
//!   spatially-mapped irrelevant dimensions, Fig. 5c);
//! * a DRAM model with first-access latency and sustained bandwidth;
//! * double-buffered PEs that overlap compute with the next tile transfer.
//!
//! Executing every loop iteration flit-by-flit would be intractable for
//! full layers, so the simulator exploits the odometer structure of the
//! loop nest: iterations of the NoC- and DRAM-level loops fall into a small
//! number of *iteration types* (indexed by the carry-chain length of the
//! odometer step — exactly the `Y` prefix indicator of the paper's Eq. 9).
//! Each distinct type's transfer set is simulated cycle-by-cycle at flit
//! granularity on the mesh; the layer latency composes the per-type
//! durations with their exact occurrence counts. Within a type the
//! simulation is cycle-accurate, including link serialization, head-of-line
//! blocking, multicast forking and hop latencies — the congestion effects
//! Timeloop's bandwidth model misses, which is the point of Fig. 10.
//!
//! # Example
//!
//! ```
//! use cosa_spec::{Arch, Layer};
//! use cosa_core::CosaScheduler;
//! use cosa_noc::NocSimulator;
//!
//! let arch = Arch::simba_baseline();
//! let layer = Layer::conv("t", 3, 3, 8, 8, 16, 16, 1, 1, 1);
//! let schedule = CosaScheduler::new(&arch).schedule(&layer)?.schedule;
//! let report = NocSimulator::new(&arch).simulate(&layer, &schedule)?;
//! assert!(report.total_cycles >= report.compute_cycles as f64);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod mesh;
mod sim;
mod traffic;

pub use mesh::{MeshConfig, MeshSim, PacketSpec};
pub use sim::{NocReport, NocSimulator, NocSummary, TypeTiming};
pub use traffic::{IterationType, TrafficPlan};
