//! Layer-latency composition: per-type flit simulations + exact counts.

use std::collections::HashMap;

use cosa_spec::{Arch, DataTensor, Layer, Schedule, SpecError};
use serde::{Deserialize, Serialize};

use crate::mesh::{MeshConfig, MeshSim, PacketSpec};
use crate::traffic::TrafficPlan;

/// Timing of one iteration class.
#[derive(Debug, Clone, PartialEq)]
pub struct TypeTiming {
    /// Occurrences over the layer.
    pub count: f64,
    /// Cycle-accurate NoC transfer time of the class's packet set.
    pub noc_cycles: u64,
    /// DRAM service time for the class (bandwidth + first-access latency).
    pub dram_cycles: f64,
    /// Tensors re-sent downstream.
    pub resend: [bool; DataTensor::COUNT],
}

/// The NoC simulator's verdict on one schedule.
#[derive(Debug, Clone)]
pub struct NocReport {
    /// End-to-end layer latency in cycles.
    pub total_cycles: f64,
    /// Total sequential compute cycles (product of temporal bounds).
    pub compute_cycles: u64,
    /// Σ per-iteration `max(compute, NoC)` — the PE/NoC pipeline bound.
    pub pipeline_cycles: f64,
    /// Total DRAM service cycles — the memory-stream bound.
    pub dram_cycles: f64,
    /// Per-class timings.
    pub types: Vec<TypeTiming>,
    /// PEs with work mapped to them.
    pub pes_used: usize,
}

impl NocReport {
    /// `true` when the layer is limited by communication rather than
    /// compute (the schedules Fig. 10 punishes).
    pub fn communication_bound(&self) -> bool {
        self.total_cycles > 1.05 * self.compute_cycles as f64
    }

    /// The serializable headline numbers (drops per-class timings), the
    /// shape the batch engine caches and persists alongside schedules.
    pub fn summary(&self) -> NocSummary {
        NocSummary {
            total_cycles: self.total_cycles,
            compute_cycles: self.compute_cycles,
            pipeline_cycles: self.pipeline_cycles,
            dram_cycles: self.dram_cycles,
            pes_used: self.pes_used,
        }
    }
}

/// The serializable headline of a [`NocReport`]: everything downstream
/// consumers (the batch engine's cache, Fig. 10 aggregation, persisted
/// reports) need, without the per-iteration-class breakdown.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NocSummary {
    /// End-to-end layer latency in cycles.
    pub total_cycles: f64,
    /// Total sequential compute cycles (product of temporal bounds).
    pub compute_cycles: u64,
    /// Σ per-iteration `max(compute, NoC)` — the PE/NoC pipeline bound.
    pub pipeline_cycles: f64,
    /// Total DRAM service cycles — the memory-stream bound.
    pub dram_cycles: f64,
    /// PEs with work mapped to them.
    pub pes_used: usize,
}

impl NocSummary {
    /// `true` when the layer is limited by communication rather than
    /// compute (mirrors [`NocReport::communication_bound`]).
    pub fn communication_bound(&self) -> bool {
        self.total_cycles > 1.05 * self.compute_cycles as f64
    }
}

/// Cycle-level NoC evaluation platform (Sec. IV-A).
///
/// See the [crate docs](crate) for an example.
#[derive(Debug, Clone)]
pub struct NocSimulator {
    arch: Arch,
}

impl NocSimulator {
    /// A simulator for `arch`.
    pub fn new(arch: &Arch) -> NocSimulator {
        NocSimulator { arch: arch.clone() }
    }

    /// Validate and simulate `schedule`, returning the latency report.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::InvalidSchedule`] for schedules that do not fit
    /// the architecture.
    pub fn simulate(&self, layer: &Layer, schedule: &Schedule) -> Result<NocReport, SpecError> {
        schedule.validate(layer, &self.arch)?;
        Ok(self.simulate_unchecked(layer, schedule))
    }

    /// Validate, simulate and summarize in one call — the entry point the
    /// batch engine uses to evaluate (and cache) NoC latency per unique
    /// layer shape without holding the full per-class breakdown.
    ///
    /// # Errors
    ///
    /// Returns [`SpecError::InvalidSchedule`] for schedules that do not fit
    /// the architecture.
    pub fn evaluate(&self, layer: &Layer, schedule: &Schedule) -> Result<NocSummary, SpecError> {
        self.simulate(layer, schedule).map(|r| r.summary())
    }

    /// Simulate without validity checks.
    pub fn simulate_unchecked(&self, layer: &Layer, schedule: &Schedule) -> NocReport {
        let plan = TrafficPlan::build(layer, &self.arch, schedule);
        let cfg = MeshConfig::from_noc(self.arch.noc());
        let dram_bw = self.arch.noc().dram_bandwidth;
        let dram_lat = self.arch.noc().dram_latency as f64;

        // Per-class flit simulation, memoized on the transfer-set shape.
        let mut cache: HashMap<(bool, bool, bool, bool, bool), u64> = HashMap::new();
        let mut types = Vec::with_capacity(plan.types.len());
        let mut pipeline = 0.0f64;
        let mut dram_total = 0.0f64;
        for t in &plan.types {
            let key = (
                t.resend[0],
                t.resend[1],
                t.resend[2],
                t.oa_readback,
                t.oa_writeback,
            );
            let noc_cycles = *cache.entry(key).or_insert_with(|| {
                let mut packets: Vec<PacketSpec> = Vec::new();
                for v in DataTensor::ALL {
                    if t.resend[v.index()] && v != DataTensor::Outputs {
                        packets.extend_from_slice(&plan.down_packets[v.index()]);
                    }
                }
                if t.oa_readback {
                    packets.extend_from_slice(&plan.down_packets[DataTensor::Outputs.index()]);
                }
                if t.oa_writeback {
                    packets.extend_from_slice(&plan.up_packets);
                }
                if packets.is_empty() {
                    0
                } else {
                    MeshSim::new(cfg).run(&packets)
                }
            });
            let dram_cycles = if t.dram_bytes > 0.0 {
                dram_lat + t.dram_bytes / dram_bw
            } else {
                0.0
            };
            pipeline += t.count * (plan.compute_per_iter as f64).max(noc_cycles as f64);
            dram_total += t.count * dram_cycles;
            types.push(TypeTiming {
                count: t.count,
                noc_cycles,
                dram_cycles,
                resend: t.resend,
            });
        }

        // Iterations without any transfer still take their compute time.
        let total_iters = plan.total_iterations();
        let counted: f64 = plan.types.iter().map(|t| t.count).sum();
        debug_assert!((total_iters - counted).abs() < 1e-6);

        // Double buffering overlaps the NoC stream of iteration t+1 with
        // the compute of iteration t, and the DRAM stream with both; the
        // layer is bound by the slowest of the two pipelines, plus one
        // final output drain.
        let drain = types
            .iter()
            .filter(|t| t.resend[DataTensor::Outputs.index()])
            .map(|t| t.noc_cycles as f64)
            .fold(0.0, f64::max);
        let total_cycles = pipeline.max(dram_total) + drain;

        NocReport {
            total_cycles,
            compute_cycles: schedule.temporal_product(),
            pipeline_cycles: pipeline,
            dram_cycles: dram_total,
            types,
            pes_used: plan.pes_used,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosa_spec::{Dim, Loop};

    fn arch() -> Arch {
        Arch::simba_baseline()
    }

    /// Sequential all-DRAM schedule.
    fn naive(layer: &Layer, arch: &Arch) -> Schedule {
        let mut s = Schedule::new(arch.num_levels());
        for d in Dim::ALL {
            for p in layer.prime_factors(d) {
                s.push(arch.dram_level(), Loop::temporal(d, p));
            }
        }
        s
    }

    #[test]
    fn latency_at_least_compute() {
        let arch = arch();
        let layer = Layer::conv("t", 3, 3, 8, 8, 8, 8, 1, 1, 1);
        let s = naive(&layer, &arch);
        let report = NocSimulator::new(&arch).simulate(&layer, &s).unwrap();
        assert!(report.total_cycles >= report.compute_cycles as f64 * 0.99);
        assert_eq!(report.compute_cycles, layer.macs());
    }

    #[test]
    fn spatial_schedule_is_faster() {
        let arch = arch();
        let layer = Layer::conv("t", 1, 1, 8, 8, 16, 16, 1, 1, 1);
        let sim = NocSimulator::new(&arch);

        let seq = naive(&layer, &arch);
        let report_seq = sim.simulate(&layer, &seq).unwrap();

        let mut par = Schedule::new(arch.num_levels());
        par.push(arch.noc_level(), Loop::spatial(Dim::K, 16));
        // Keep weight/input tiles inside PE buffers: C below the NoC.
        for d in [Dim::C] {
            for p in layer.prime_factors(d) {
                par.push(2, Loop::temporal(d, p));
            }
        }
        for d in [Dim::P, Dim::Q] {
            for p in layer.prime_factors(d) {
                par.push(arch.noc_level(), Loop::temporal(d, p));
            }
        }
        let report_par = sim.simulate(&layer, &par).unwrap();
        assert!(
            report_par.total_cycles * 4.0 < report_seq.total_cycles,
            "parallel {} vs sequential {}",
            report_par.total_cycles,
            report_seq.total_cycles
        );
    }

    #[test]
    fn permutation_affects_noc_latency() {
        // Two schedules differing only in the NoC-level loop order: the
        // weight-reusing order (irrelevant P innermost) must not be slower.
        let arch = arch();
        let layer = Layer::conv("t", 1, 1, 16, 1, 64, 16, 1, 1, 1);
        let sim = NocSimulator::new(&arch);
        let build = |p_inner: bool| {
            let mut s = Schedule::new(arch.num_levels());
            s.push(arch.noc_level(), Loop::spatial(Dim::K, 16));
            let loops = if p_inner {
                [(Dim::C, 64), (Dim::P, 16)]
            } else {
                [(Dim::P, 16), (Dim::C, 64)]
            };
            for (d, b) in loops {
                for f in cosa_spec::primes::factorize(b) {
                    s.push(arch.noc_level(), Loop::temporal(d, f));
                }
            }
            s
        };
        let p_inner = sim.simulate(&layer, &build(true)).unwrap();
        let c_inner = sim.simulate(&layer, &build(false)).unwrap();
        assert!(
            p_inner.total_cycles <= c_inner.total_cycles,
            "P-inner {} vs C-inner {}",
            p_inner.total_cycles,
            c_inner.total_cycles
        );
    }

    #[test]
    fn fc_layers_are_memory_bound() {
        // A fully-connected layer: huge weights, tiny activations — DRAM
        // streaming dominates any schedule (Sec. V-C's observation).
        let arch = arch();
        let layer = Layer::matmul("fc", 2048, 1000, 1);
        let mut s = Schedule::new(arch.num_levels());
        // Use the MAC vector (C across 64 lanes) and 8 PEs (K): compute
        // shrinks to 4000 cycles while 2 MB of weights stream from DRAM.
        for _ in 0..6 {
            s.push(0, Loop::spatial(Dim::C, 2));
        }
        for _ in 0..5 {
            s.push(1, Loop::temporal(Dim::C, 2));
        }
        s.push(arch.noc_level(), Loop::spatial(Dim::K, 8));
        for p in cosa_spec::primes::factorize(125) {
            s.push(arch.noc_level(), Loop::temporal(Dim::K, p));
        }
        let report = NocSimulator::new(&arch).simulate(&layer, &s).unwrap();
        assert!(report.dram_cycles > report.compute_cycles as f64);
        assert!(report.communication_bound());
    }

    #[test]
    fn report_types_cover_all_iterations() {
        let arch = arch();
        let layer = Layer::conv("t", 3, 3, 4, 4, 8, 8, 1, 1, 1);
        let mut s = naive(&layer, &arch);
        // Move some loops to the NoC level for a multi-type plan.
        let dram = arch.dram_level();
        let moved: Vec<Loop> = s.level_mut(dram).loops.drain(..4).collect();
        for lp in moved {
            s.push(arch.noc_level(), lp);
        }
        let report = NocSimulator::new(&arch).simulate(&layer, &s).unwrap();
        let sum: f64 = report.types.iter().map(|t| t.count).sum();
        let expect: u64 = s.levels()[arch.noc_level()]
            .loops
            .iter()
            .chain(&s.levels()[dram].loops)
            .filter(|l| !l.spatial)
            .map(|l| l.bound)
            .product();
        assert!((sum - expect as f64).abs() < 1e-6, "{sum} vs {expect}");
    }
}
