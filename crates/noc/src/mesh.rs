//! Flit-level 2-D mesh simulation: input-buffered wormhole routers, X-Y
//! routing, tree multicast, one global-buffer injection point.
//!
//! The mesh is simulated synchronously, one cycle at a time. Every router
//! has five bidirectional ports (E, W, N, S, Local) plus — at the
//! global-buffer position — an injection port fed by the GB packet queue.
//! A packet's head flit claims all output ports on its (possibly forking)
//! route; body flits stream behind it; the tail releases the claim
//! (wormhole switching). Multicast routes follow the unique X-Y path to
//! each destination, so a flit copy forks exactly at the branch routers.

use std::collections::VecDeque;

/// Static mesh parameters (a subset of [`cosa_spec::NocParams`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeshConfig {
    /// Mesh width.
    pub x: usize,
    /// Mesh height.
    pub y: usize,
    /// Router pipeline + link traversal latency per hop, in cycles.
    pub hop_latency: u64,
    /// Input buffer depth per port, in flits.
    pub buffer_depth: usize,
    /// Node index (column-major `y * x + x`) where the global buffer /
    /// DRAM interface attaches.
    pub gb_node: usize,
    /// Whether routers may replicate flits (multicast). When `false`,
    /// multicast packets are serialized into unicast clones at injection.
    pub multicast: bool,
}

impl MeshConfig {
    /// Build from architecture NoC parameters, GB at node 0.
    pub fn from_noc(p: &cosa_spec::NocParams) -> MeshConfig {
        MeshConfig {
            x: p.mesh_x,
            y: p.mesh_y,
            hop_latency: p.router_latency + p.link_latency,
            buffer_depth: p.buffer_depth,
            gb_node: 0,
            multicast: p.multicast,
        }
    }

    fn coords(&self, node: usize) -> (usize, usize) {
        (node % self.x, node / self.x)
    }

    /// Number of mesh nodes.
    pub fn nodes(&self) -> usize {
        self.x * self.y
    }
}

/// One packet to deliver: `flits` payload flits (plus an implicit head)
/// from `src` to every node in `dests`.
#[derive(Debug, Clone, PartialEq)]
pub struct PacketSpec {
    /// Source node (the GB node for downstream traffic, a PE for
    /// writebacks).
    pub src: usize,
    /// Destination nodes. Multiple destinations form a multicast tree.
    pub dests: Vec<usize>,
    /// Number of flits (header included by the caller's accounting).
    pub flits: u64,
}

const DIR_E: usize = 0;
const DIR_W: usize = 1;
const DIR_N: usize = 2;
const DIR_S: usize = 3;
const DIR_LOCAL: usize = 4;
const DIR_INJECT: usize = 5;
const NUM_PORTS: usize = 6;

#[derive(Debug, Clone, Copy, PartialEq)]
struct Flit {
    packet: u32,
    /// Sequence index within the packet (0 = head).
    seq: u64,
    tail: bool,
}

/// Per-input-port state: the queue and (while a packet streams through)
/// the granted output port set.
#[derive(Debug, Default, Clone)]
struct InPort {
    queue: VecDeque<Flit>,
    /// In-flight flits due to arrive later: `(arrival_cycle, flit)`.
    pipeline: VecDeque<(u64, Flit)>,
    /// Output ports currently granted to the packet streaming through.
    grant: Option<(u32, Vec<usize>)>,
}

impl InPort {
    fn occupancy(&self) -> usize {
        self.queue.len() + self.pipeline.len()
    }

    fn drain_arrivals(&mut self, now: u64) {
        while let Some((t, _)) = self.pipeline.front() {
            if *t <= now {
                let (_, f) = self.pipeline.pop_front().expect("checked front");
                self.queue.push_back(f);
            } else {
                break;
            }
        }
    }
}

/// The cycle-stepped mesh simulator.
///
/// ```
/// use cosa_noc::{MeshConfig, MeshSim, PacketSpec};
/// let cfg = MeshConfig { x: 4, y: 4, hop_latency: 3, buffer_depth: 8,
///                        gb_node: 0, multicast: true };
/// // A 10-flit unicast packet from the GB to the far corner.
/// let cycles = MeshSim::new(cfg).run(&[PacketSpec { src: 0, dests: vec![15], flits: 10 }]);
/// // 6 hops * 3 cycles + 10 flits of serialization, give or take setup.
/// assert!(cycles > 20 && cycles < 60, "{cycles}");
/// ```
#[derive(Debug)]
pub struct MeshSim {
    cfg: MeshConfig,
    /// `ports[node][dir]`.
    ports: Vec<Vec<InPort>>,
    /// Packet table: route sources and destination sets.
    packets: Vec<PacketSpec>,
    /// Remaining flits to eject per `(packet, dest)`.
    remaining: Vec<Vec<(usize, u64)>>,
    /// Per-source injection queues (packets are serialized per source).
    inject_queues: Vec<VecDeque<(u32, u64)>>,
    now: u64,
}

impl MeshSim {
    /// A fresh simulator for `cfg`.
    pub fn new(cfg: MeshConfig) -> MeshSim {
        let nodes = cfg.nodes();
        MeshSim {
            cfg,
            ports: (0..nodes)
                .map(|_| (0..NUM_PORTS).map(|_| InPort::default()).collect())
                .collect(),
            packets: Vec::new(),
            remaining: Vec::new(),
            inject_queues: vec![VecDeque::new(); nodes],
            now: 0,
        }
    }

    /// Deliver all packets; returns the cycle at which the last flit ejects.
    ///
    /// Packets from the same source are injected back-to-back in order;
    /// different sources inject concurrently (each node has its own
    /// injection port).
    pub fn run(mut self, packets: &[PacketSpec]) -> u64 {
        // Expand multicast into unicast clones when the fabric lacks
        // replication support.
        let expanded: Vec<PacketSpec> = if self.cfg.multicast {
            packets.to_vec()
        } else {
            packets
                .iter()
                .flat_map(|p| {
                    p.dests.iter().map(|d| PacketSpec {
                        src: p.src,
                        dests: vec![*d],
                        flits: p.flits,
                    })
                })
                .collect()
        };
        for (i, p) in expanded.iter().enumerate() {
            debug_assert!(!p.dests.is_empty());
            debug_assert!(p.flits > 0);
            self.remaining
                .push(p.dests.iter().map(|d| (*d, p.flits)).collect());
            self.inject_queues[p.src].push_back((i as u32, p.flits));
        }
        self.packets = expanded;

        let cap = self.cycle_cap();
        while !self.done() {
            self.step();
            if self.now > cap {
                // Deadlock guard: report the cap rather than hang. The
                // traffic patterns generated from valid schedules do not
                // deadlock (single-source trees + disjoint return paths),
                // so hitting this indicates a malformed packet set.
                debug_assert!(false, "mesh simulation exceeded cycle cap");
                return cap;
            }
        }
        self.now
    }

    fn cycle_cap(&self) -> u64 {
        let total_flits: u64 = self
            .packets
            .iter()
            .map(|p| p.flits * p.dests.len() as u64)
            .sum();
        let hops = (self.cfg.x + self.cfg.y) as u64 * self.cfg.hop_latency;
        10_000 + hops * 4 + total_flits * 16
    }

    fn done(&self) -> bool {
        self.remaining
            .iter()
            .all(|dests| dests.iter().all(|(_, n)| *n == 0))
            && self.inject_queues.iter().all(|q| q.is_empty())
    }

    /// Direction(s) a packet takes out of `node`: the union of next hops of
    /// the X-Y paths to destinations whose route passes through `node`.
    fn route_dirs(&self, node: usize, pkt: &PacketSpec) -> Vec<usize> {
        let (nx, ny) = self.cfg.coords(node);
        let (sx, sy) = self.cfg.coords(pkt.src);
        let mut dirs = Vec::new();
        for &d in &pkt.dests {
            let (dx, dy) = self.cfg.coords(d);
            // X-Y path: horizontal at sy from sx→dx, then vertical at dx.
            let on_horizontal = ny == sy && within(nx, sx, dx);
            let on_vertical = nx == dx && within(ny, sy, dy);
            if !(on_horizontal || on_vertical) {
                continue;
            }
            let dir = if d == node {
                DIR_LOCAL
            } else if ny == sy && nx != dx {
                if dx > nx {
                    DIR_E
                } else {
                    DIR_W
                }
            } else if dy > ny {
                DIR_S
            } else if dy < ny {
                DIR_N
            } else {
                // On the vertical segment at the destination row but not the
                // destination itself can not happen (nx == dx && ny == dy ⇒
                // d == node).
                continue;
            };
            if !dirs.contains(&dir) {
                dirs.push(dir);
            }
        }
        dirs
    }

    fn neighbor(&self, node: usize, dir: usize) -> (usize, usize) {
        let (x, y) = self.cfg.coords(node);
        // Returns (node, arrival input port at that node).
        match dir {
            DIR_E => (y * self.cfg.x + (x + 1), DIR_W),
            DIR_W => (y * self.cfg.x + (x - 1), DIR_E),
            DIR_N => ((y - 1) * self.cfg.x + x, DIR_S),
            DIR_S => ((y + 1) * self.cfg.x + x, DIR_N),
            _ => unreachable!("no neighbor through local ports"),
        }
    }

    fn step(&mut self) {
        self.now += 1;
        let now = self.now;
        let nodes = self.cfg.nodes();

        // 1. Arrivals reach the input queues.
        for node in 0..nodes {
            for port in self.ports[node].iter_mut() {
                port.drain_arrivals(now);
            }
        }

        // 2. Source injection: one flit per source per cycle into the
        //    injection port (subject to buffer space).
        for node in 0..nodes {
            let Some(&(pkt, remaining)) = self.inject_queues[node].front() else {
                continue;
            };
            let in_port = &mut self.ports[node][DIR_INJECT];
            if in_port.occupancy() >= self.cfg.buffer_depth {
                continue;
            }
            let total = self.packets[pkt as usize].flits;
            let seq = total - remaining;
            in_port.queue.push_back(Flit {
                packet: pkt,
                seq,
                tail: remaining == 1,
            });
            if remaining == 1 {
                self.inject_queues[node].pop_front();
            } else {
                self.inject_queues[node].front_mut().expect("nonempty").1 -= 1;
            }
        }

        // 3. Switch allocation + traversal, one flit per input port per
        //    cycle, one grant per output port. Rotating priority between
        //    input ports avoids starvation.
        for node in 0..nodes {
            let mut out_claimed = [false; NUM_PORTS];
            // Output ports already owned by in-flight wormholes.
            for port in self.ports[node].iter() {
                if let Some((_, dirs)) = &port.grant {
                    for &d in dirs {
                        out_claimed[d] = true;
                    }
                }
            }
            let start = (now as usize) % NUM_PORTS;
            for off in 0..NUM_PORTS {
                let pi = (start + off) % NUM_PORTS;
                // Inspect the head flit.
                let Some(&flit) = self.ports[node][pi].queue.front() else {
                    continue;
                };
                let dirs: Vec<usize> = match &self.ports[node][pi].grant {
                    Some((owner, dirs)) if *owner == flit.packet => dirs.clone(),
                    Some(_) => continue, // wormhole busy with another packet
                    None => {
                        if flit.seq != 0 {
                            // Body flit without a grant: its head moved on
                            // under an earlier grant that was released —
                            // cannot happen because grants persist to tail.
                            debug_assert!(flit.seq == 0, "body flit without grant");
                            continue;
                        }
                        let route = self.route_dirs(node, &self.packets[flit.packet as usize]);
                        if route.is_empty() {
                            // Mis-routed flit; drop defensively.
                            self.ports[node][pi].queue.pop_front();
                            continue;
                        }
                        // Head may only proceed if *all* branch ports are
                        // free (multicast fork is synchronous).
                        if route.iter().any(|&d| out_claimed[d]) {
                            continue;
                        }
                        route
                    }
                };

                // Check downstream space on every non-local branch.
                let mut ok = true;
                for &d in &dirs {
                    if d == DIR_LOCAL {
                        continue;
                    }
                    let (nn, np) = self.neighbor(node, d);
                    if self.ports[nn][np].occupancy() >= self.cfg.buffer_depth {
                        ok = false;
                        break;
                    }
                }
                if !ok {
                    continue;
                }

                // Forward the flit on all branches.
                let flit = self.ports[node][pi].queue.pop_front().expect("head exists");
                for &d in &dirs {
                    out_claimed[d] = true;
                    if d == DIR_LOCAL {
                        // Ejection: deliver to this node.
                        for (dest, left) in self.remaining[flit.packet as usize].iter_mut() {
                            if *dest == node && *left > 0 {
                                *left -= 1;
                            }
                        }
                    } else {
                        let (nn, np) = self.neighbor(node, d);
                        self.ports[nn][np]
                            .pipeline
                            .push_back((now + self.cfg.hop_latency, flit));
                    }
                }
                // Maintain the wormhole grant.
                if flit.tail {
                    self.ports[node][pi].grant = None;
                } else {
                    self.ports[node][pi].grant = Some((flit.packet, dirs));
                }
            }
        }
    }
}

fn within(v: usize, a: usize, b: usize) -> bool {
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    v >= lo && v <= hi
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg4() -> MeshConfig {
        MeshConfig {
            x: 4,
            y: 4,
            hop_latency: 3,
            buffer_depth: 8,
            gb_node: 0,
            multicast: true,
        }
    }

    #[test]
    fn single_flit_latency_scales_with_hops() {
        // dest 3 = (3,0): 3 hops. dest 15 = (3,3): 6 hops.
        let near = MeshSim::new(cfg4()).run(&[PacketSpec {
            src: 0,
            dests: vec![3],
            flits: 1,
        }]);
        let far = MeshSim::new(cfg4()).run(&[PacketSpec {
            src: 0,
            dests: vec![15],
            flits: 1,
        }]);
        assert!(far > near, "far {far} vs near {near}");
        assert!(far >= 6 * 3, "{far}");
    }

    #[test]
    fn long_packet_serializes_on_flits() {
        let short = MeshSim::new(cfg4()).run(&[PacketSpec {
            src: 0,
            dests: vec![5],
            flits: 2,
        }]);
        let long = MeshSim::new(cfg4()).run(&[PacketSpec {
            src: 0,
            dests: vec![5],
            flits: 64,
        }]);
        assert!(long >= short + 62, "long {long} vs short {short}");
    }

    #[test]
    fn multicast_beats_unicast_clones() {
        let dests: Vec<usize> = (1..16).collect();
        let pkt = PacketSpec {
            src: 0,
            dests: dests.clone(),
            flits: 32,
        };
        let mc = MeshSim::new(cfg4()).run(std::slice::from_ref(&pkt));
        let mut uc_cfg = cfg4();
        uc_cfg.multicast = false;
        let uc = MeshSim::new(uc_cfg).run(&[pkt]);
        assert!(
            mc * 2 < uc,
            "multicast {mc} should be far faster than unicast clones {uc}"
        );
    }

    #[test]
    fn contending_packets_serialize() {
        // Two packets to the same destination share every link.
        let one = MeshSim::new(cfg4()).run(&[PacketSpec {
            src: 0,
            dests: vec![3],
            flits: 32,
        }]);
        let two = MeshSim::new(cfg4()).run(&[
            PacketSpec {
                src: 0,
                dests: vec![3],
                flits: 32,
            },
            PacketSpec {
                src: 0,
                dests: vec![3],
                flits: 32,
            },
        ]);
        assert!(two >= one + 30, "two {two} vs one {one}");
    }

    #[test]
    fn distinct_sources_can_overlap() {
        // Writebacks from two different PEs to the GB overlap on disjoint
        // path prefixes: total ≪ sum of individual times.
        let a = PacketSpec {
            src: 15,
            dests: vec![0],
            flits: 32,
        };
        let b = PacketSpec {
            src: 12,
            dests: vec![0],
            flits: 32,
        };
        let ta = MeshSim::new(cfg4()).run(std::slice::from_ref(&a));
        let tb = MeshSim::new(cfg4()).run(std::slice::from_ref(&b));
        let both = MeshSim::new(cfg4()).run(&[a, b]);
        assert!(both < ta + tb, "both {both} vs {ta}+{tb}");
    }

    #[test]
    fn empty_traffic_finishes_immediately() {
        assert_eq!(MeshSim::new(cfg4()).run(&[]), 0);
    }

    #[test]
    fn all_flits_delivered_to_all_dests() {
        // Deliberately heavy multicast + writeback mix; the run must
        // terminate (i.e. every (packet, dest) pair drains to zero).
        let mut pkts = vec![PacketSpec {
            src: 0,
            dests: (1..16).collect(),
            flits: 16,
        }];
        for pe in [5usize, 6, 9, 10] {
            pkts.push(PacketSpec {
                src: pe,
                dests: vec![0],
                flits: 8,
            });
        }
        let cycles = MeshSim::new(cfg4()).run(&pkts);
        assert!(cycles > 0);
    }
}
