//! One-shot scheduling through the SAT backend.

use std::fmt;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

use cosa_core::{extract_schedule, refine_intra_level_order, FactorAssignment, ObjectiveWeights};
use cosa_spec::{Arch, Layer, Schedule};

use crate::encode::{OptimizeOutcome, SatProgram};
use crate::solver::SatStats;

/// Errors reported by [`SatScheduler::schedule`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SatError {
    /// The constraints admit no schedule (e.g. a degenerate architecture
    /// whose buffers cannot hold a single element).
    Infeasible,
    /// The conflict budget ran out before any model was found.
    Budget,
    /// The solve was cancelled through its stop flag (portfolio racing).
    Canceled,
    /// The decoded schedule failed validation — an encoder bug if ever hit.
    Extraction(String),
}

impl fmt::Display for SatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SatError::Infeasible => write!(f, "scheduling constraints are unsatisfiable"),
            SatError::Budget => write!(f, "conflict budget exhausted before a schedule was found"),
            SatError::Canceled => write!(f, "solve was cancelled by its stop flag"),
            SatError::Extraction(s) => write!(f, "decoded schedule failed validation: {s}"),
        }
    }
}

impl std::error::Error for SatError {}

/// Output of one SAT scheduling run.
#[derive(Debug, Clone)]
pub struct SatOutcome {
    /// The extracted (and validated) schedule.
    pub schedule: Schedule,
    /// The underlying factor allocation and permutation.
    pub assignment: FactorAssignment,
    /// Objective value (Eq. 12 scale, comparable to the MILP's).
    pub objective: f64,
    /// Whether the bound-tightening loop closed with an UNSAT proof
    /// (optimality) rather than a budget stop (anytime incumbent).
    pub proven_optimal: bool,
    /// Search statistics.
    pub stats: SatStats,
    /// Wall-clock time spent in `schedule()`.
    pub solve_time: Duration,
}

/// The SAT scheduler: encodes the layer's scheduling program as Boolean
/// constraints, optimizes Eq. 12 by iterative bound-tightening and
/// extracts the same loop-nest schedules as [`cosa_core::CosaScheduler`].
#[derive(Debug, Clone)]
pub struct SatScheduler {
    arch: Arch,
    weights: ObjectiveWeights,
    conflict_budget: Option<u64>,
}

/// Default total conflict budget: comfortably proves optimality on the
/// paper's layer sizes while bounding the worst case deterministically.
const DEFAULT_CONFLICT_BUDGET: u64 = 400_000;

impl SatScheduler {
    /// A scheduler for `arch` with default objective weights.
    pub fn new(arch: &Arch) -> SatScheduler {
        SatScheduler::with_weights(arch, ObjectiveWeights::default())
    }

    /// A scheduler with explicit objective weights (Eq. 12).
    pub fn with_weights(arch: &Arch, weights: ObjectiveWeights) -> SatScheduler {
        SatScheduler {
            arch: arch.clone(),
            weights,
            conflict_budget: Some(DEFAULT_CONFLICT_BUDGET),
        }
    }

    /// Override the total conflict budget (`None` = unbounded, guaranteeing
    /// an optimality proof at the cost of an unbounded solve). The budget
    /// is a conflict count, not wall-clock, so results stay
    /// bit-reproducible even when it binds.
    pub fn with_conflict_budget(mut self, budget: Option<u64>) -> SatScheduler {
        self.conflict_budget = budget;
        self
    }

    /// The objective weights in use.
    pub fn weights(&self) -> ObjectiveWeights {
        self.weights
    }

    /// The architecture this scheduler was built for.
    pub fn arch(&self) -> &Arch {
        &self.arch
    }

    /// The configured conflict budget.
    pub fn conflict_budget(&self) -> Option<u64> {
        self.conflict_budget
    }

    /// The same configuration retargeted at another architecture.
    pub fn for_arch(&self, arch: &Arch) -> SatScheduler {
        SatScheduler {
            arch: arch.clone(),
            weights: self.weights,
            conflict_budget: self.conflict_budget,
        }
    }

    /// Produce a schedule for `layer` in one shot.
    ///
    /// # Errors
    ///
    /// [`SatError::Infeasible`] when the constraints are unsatisfiable,
    /// [`SatError::Budget`] when the conflict budget ran out before any
    /// model appeared.
    pub fn schedule(&self, layer: &Layer) -> Result<SatOutcome, SatError> {
        self.schedule_with_stop(layer, None)
    }

    /// Like [`SatScheduler::schedule`] with a cooperative cancellation
    /// flag polled in the search loop.
    ///
    /// # Errors
    ///
    /// See [`SatScheduler::schedule`]; additionally [`SatError::Canceled`]
    /// once the flag reads `true`.
    pub fn schedule_with_stop(
        &self,
        layer: &Layer,
        stop: Option<Arc<AtomicBool>>,
    ) -> Result<SatOutcome, SatError> {
        let start = Instant::now();
        let mut program = SatProgram::build(layer, &self.arch, self.weights);
        let (assignment, proven_optimal) = match program.optimize(self.conflict_budget, stop) {
            OptimizeOutcome::Optimal(a) => (a, true),
            OptimizeOutcome::Feasible(a) => (a, false),
            OptimizeOutcome::Infeasible => return Err(SatError::Infeasible),
            OptimizeOutcome::NoSolution => return Err(SatError::Budget),
            OptimizeOutcome::Canceled => return Err(SatError::Canceled),
        };
        let mut schedule = extract_schedule(&self.arch, &assignment);
        refine_intra_level_order(layer, &self.arch, &mut schedule);
        schedule
            .validate(layer, &self.arch)
            .map_err(|e| SatError::Extraction(e.to_string()))?;
        Ok(SatOutcome {
            schedule,
            objective: assignment.objective,
            assignment,
            proven_optimal,
            stats: program.stats(),
            solve_time: start.elapsed(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_small_layer_validly_and_optimally() {
        let arch = Arch::simba_baseline();
        let layer = Layer::conv("t", 1, 1, 8, 8, 16, 16, 1, 1, 1);
        let out = SatScheduler::new(&arch).schedule(&layer).unwrap();
        assert!(out.schedule.is_valid(&layer, &arch));
        assert!(out.proven_optimal, "small layers must prove optimality");
    }

    #[test]
    fn deterministic_across_runs() {
        let arch = Arch::simba_baseline();
        let layer = Layer::matmul("t", 16, 16, 16);
        let s = SatScheduler::new(&arch);
        let a = s.schedule(&layer).unwrap();
        let b = s.schedule(&layer).unwrap();
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.objective.to_bits(), b.objective.to_bits());
        assert_eq!(a.stats, b.stats);
    }

    #[test]
    fn infeasible_on_degenerate_arch() {
        // Shrink every buffer so far that not even one element fits: the
        // MILP is infeasible, so the SAT side must prove UNSAT.
        let arch = cosa_spec::ArchBuilder::new("tiny")
            .mesh(2, 2)
            .local_buffer_scale(0)
            .global_buffer_scale(0)
            .build();
        let Ok(arch) = arch else {
            return; // builder refuses zero scale: nothing to test
        };
        let layer = Layer::conv("t", 3, 3, 8, 8, 16, 16, 1, 1, 1);
        match SatScheduler::new(&arch).schedule(&layer) {
            Err(SatError::Infeasible) | Ok(_) => {}
            Err(e) => panic!("unexpected error {e}"),
        }
    }
}
