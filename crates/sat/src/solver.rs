//! A from-scratch CDCL SAT solver with native pseudo-Boolean constraints.
//!
//! The search core is the classic conflict-driven clause-learning loop:
//! two-watched-literal propagation, VSIDS-style variable activity with
//! phase saving, first-UIP conflict analysis and Luby restarts. Everything
//! is counter-based and free of wall-clock or randomness dependence, so a
//! given formula always produces the same model — the same determinism
//! contract the hand-rolled simplex in `cosa-milp` provides.
//!
//! On top of plain clauses the solver handles linear pseudo-Boolean
//! constraints `Σ cᵢ·[litᵢ] ≤ bound` with `f64` coefficients, propagated by
//! the counter method: the running sum of true-literal coefficients is
//! maintained incrementally along the trail, a constraint conflicts when
//! the sum exceeds its bound and it implies `¬l` whenever `sum + c_l`
//! would. Conflict analysis sees pseudo-Boolean constraints through
//! implied clausal reasons (`¬t₁ ∨ … ∨ ¬tₖ ∨ q`), which keeps first-UIP
//! learning sound without cutting-plane machinery. Bounds may only be
//! tightened in place ([`Solver::set_pb_bound`]), so every learnt clause
//! remains implied — that is exactly what the objective layer's iterative
//! bound-tightening needs.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A propositional variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(u32);

impl Var {
    /// The variable's dense index (assignment order of [`Solver::new_var`]).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A literal: a variable or its negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    /// The positive literal of `v`.
    pub fn pos(v: Var) -> Lit {
        Lit(v.0 << 1)
    }

    /// The negative literal of `v`.
    pub fn neg(v: Var) -> Lit {
        Lit(v.0 << 1 | 1)
    }

    /// The underlying variable index.
    pub fn var(self) -> usize {
        (self.0 >> 1) as usize
    }

    /// The underlying variable.
    pub fn variable(self) -> Var {
        Var(self.0 >> 1)
    }

    /// `true` for a negated literal.
    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    /// The opposite literal.
    #[must_use]
    pub fn inverse(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn code(self) -> usize {
        self.0 as usize
    }
}

/// Outcome of a [`Solver::solve`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveOutcome {
    /// A model was found; read it with [`Solver::value`].
    Sat,
    /// The formula is unsatisfiable.
    Unsat,
    /// The conflict budget ran out before an answer.
    Limit,
    /// The stop flag was raised ([`Solver::set_stop`]).
    Canceled,
}

/// Cumulative search statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SatStats {
    /// Conflicts encountered (learnt clauses).
    pub conflicts: u64,
    /// Decisions taken.
    pub decisions: u64,
    /// Literals propagated.
    pub propagations: u64,
    /// Restarts performed.
    pub restarts: u64,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reason {
    Decision,
    Clause(u32),
    Pb(u32),
}

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
    /// `true` for conflict-learnt clauses (deletion candidates).
    learnt: bool,
    /// Activity: bumped when the clause participates in conflict
    /// analysis; low-activity learnt clauses are periodically deleted.
    act: f64,
}

#[derive(Debug)]
struct Pb {
    /// `(coefficient, literal)` terms; coefficients are strictly positive
    /// and each literal appears at most once.
    terms: Vec<(f64, Lit)>,
    bound: f64,
    /// Difference between the stored (normalized) bound and the bound the
    /// caller supplied, so [`Solver::set_pb_bound`] can keep accepting
    /// caller-scale values.
    norm_offset: f64,
    /// Incremental sum of coefficients of currently-true literals.
    sum_true: f64,
    max_coef: f64,
    /// Term indices sorted by descending coefficient (ties by index):
    /// greedy reason extraction walks this to keep learnt clauses short.
    by_coef: Vec<u32>,
}

impl Pb {
    /// Exact fixed-order recomputation of the true-coefficient sum; used
    /// near the bound so incremental floating-point drift can never flip a
    /// feasibility decision.
    fn exact_sum(&self, assign: &[i8]) -> f64 {
        let mut s = 0.0;
        for &(c, l) in &self.terms {
            if lit_value(assign, l) == 1 {
                s += c;
            }
        }
        s
    }
}

fn lit_value(assign: &[i8], l: Lit) -> i8 {
    let v = assign[l.var()];
    if l.is_neg() {
        -v
    } else {
        v
    }
}

enum Conflict {
    Clause(u32),
    /// Pre-extracted conflicting-assignment clause of a pseudo-Boolean
    /// constraint (every literal currently false).
    Lits(Vec<Lit>),
}

/// Number of conflicts per Luby-sequence unit.
const RESTART_UNIT: u64 = 128;
/// Stop-flag poll interval, in search-loop iterations.
const STOP_POLL: u64 = 128;
/// Activity decay applied after each conflict.
const ACT_DECAY: f64 = 1.0 / 0.95;
/// Clause-activity decay applied after each conflict.
const CLA_DECAY: f64 = 1.0 / 0.999;

/// The CDCL solver.
#[derive(Debug)]
pub struct Solver {
    // Assignment state.
    assign: Vec<i8>, // 0 unassigned, 1 true, -1 false
    level: Vec<u32>,
    pos: Vec<u32>,
    reason: Vec<Reason>,
    saved_phase: Vec<bool>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,

    // Clause database.
    clauses: Vec<Clause>,
    watches: Vec<Vec<u32>>, // per literal code: clauses watching that literal

    // Pseudo-Boolean constraints.
    pbs: Vec<Pb>,
    pb_occ: Vec<Vec<(u32, f64)>>, // per literal code: (pb index, coefficient)

    // Branching heuristic.
    activity: Vec<f64>,
    act_inc: f64,

    // Learnt-clause management.
    cla_inc: f64,
    num_learnts: usize,
    max_learnts: usize,

    // Analysis scratch.
    seen: Vec<bool>,

    ok: bool,
    stop: Option<Arc<AtomicBool>>,
    /// Search statistics (cumulative across `solve` calls).
    pub stats: SatStats,
}

impl Default for Solver {
    fn default() -> Solver {
        Solver::new()
    }
}

impl Solver {
    /// An empty solver.
    pub fn new() -> Solver {
        Solver {
            assign: Vec::new(),
            level: Vec::new(),
            pos: Vec::new(),
            reason: Vec::new(),
            saved_phase: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            clauses: Vec::new(),
            watches: Vec::new(),
            pbs: Vec::new(),
            pb_occ: Vec::new(),
            activity: Vec::new(),
            act_inc: 1.0,
            cla_inc: 1.0,
            num_learnts: 0,
            max_learnts: 0,
            seen: Vec::new(),
            ok: true,
            stop: None,
            stats: SatStats::default(),
        }
    }

    /// Install a cooperative cancellation flag, polled inside the search
    /// loop; once it reads `true`, [`Solver::solve`] returns
    /// [`SolveOutcome::Canceled`].
    pub fn set_stop(&mut self, stop: Option<Arc<AtomicBool>>) {
        self.stop = stop;
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Add a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(0);
        self.level.push(0);
        self.pos.push(0);
        self.reason.push(Reason::Decision);
        self.saved_phase.push(false);
        self.activity.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.pb_occ.push(Vec::new());
        self.pb_occ.push(Vec::new());
        v
    }

    /// Model value of `v`; only meaningful after [`SolveOutcome::Sat`].
    pub fn value(&self, v: Var) -> bool {
        self.assign[v.index()] == 1
    }

    /// `false` once the clause database is known unsatisfiable outright.
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// Add a clause (must be called at decision level 0, i.e. outside
    /// `solve`). Returns `false` if the database became trivially
    /// unsatisfiable.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        debug_assert!(self.trail_lim.is_empty(), "add_clause at level 0 only");
        if !self.ok {
            return false;
        }
        // Simplify: sort/dedup, drop false literals, detect tautologies and
        // already-satisfied clauses.
        let mut ls: Vec<Lit> = lits.to_vec();
        ls.sort_unstable();
        ls.dedup();
        let mut simplified = Vec::with_capacity(ls.len());
        for (i, &l) in ls.iter().enumerate() {
            if i + 1 < ls.len() && ls[i + 1] == l.inverse() {
                return true; // tautology
            }
            match lit_value(&self.assign, l) {
                1 => return true, // satisfied at level 0
                -1 => {}          // false at level 0: drop
                _ => simplified.push(l),
            }
        }
        match simplified.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                if !self.enqueue(simplified[0], Reason::Decision) {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                let ci = self.clauses.len() as u32;
                self.watches[simplified[0].code()].push(ci);
                self.watches[simplified[1].code()].push(ci);
                self.clauses.push(Clause {
                    lits: simplified,
                    learnt: false,
                    act: 0.0,
                });
                true
            }
        }
    }

    /// Add the pseudo-Boolean constraint `Σ coef·[lit] ≤ bound`. Negative
    /// coefficients are normalized onto negated literals; duplicate and
    /// complementary literals are merged. Returns the constraint's handle
    /// for later [`Solver::set_pb_bound`] tightening, or `None` when the
    /// constraint is trivially satisfied (and was dropped).
    pub fn add_pb_le(&mut self, terms: &[(f64, Lit)], bound: f64) -> Option<usize> {
        self.cancel_until(0); // constraints are installed at the root
        let caller_bound = bound;
        // Aggregate duplicate literals.
        let mut agg: Vec<(Lit, f64)> = Vec::with_capacity(terms.len());
        for &(c, l) in terms {
            agg.push((l, c));
        }
        agg.sort_unstable_by_key(|(l, _)| *l);
        let mut merged: Vec<(Lit, f64)> = Vec::with_capacity(agg.len());
        for (l, c) in agg {
            match merged.last_mut() {
                Some((pl, pc)) if *pl == l => *pc += c,
                _ => merged.push((l, c)),
            }
        }
        // Normalize negative coefficients: c·[l] = |c|·[¬l] − |c|.
        let mut bound = bound;
        let mut norm: Vec<(Lit, f64)> = Vec::with_capacity(merged.len());
        for (l, c) in merged {
            if c < 0.0 {
                bound += -c;
                norm.push((l.inverse(), -c));
            } else if c > 0.0 {
                norm.push((l, c));
            }
        }
        // Merge complementary pairs: a·[l] + b·[¬l] = min + (a−min)[l] + …
        norm.sort_unstable_by_key(|(l, _)| *l);
        let mut final_terms: Vec<(f64, Lit)> = Vec::with_capacity(norm.len());
        let mut i = 0;
        while i < norm.len() {
            let (l, c) = norm[i];
            if i + 1 < norm.len() && norm[i + 1].0 == l.inverse() {
                let (l2, c2) = norm[i + 1];
                let m = c.min(c2);
                bound -= m;
                if c - m > 1e-15 {
                    final_terms.push((c - m, l));
                }
                if c2 - m > 1e-15 {
                    final_terms.push((c2 - m, l2));
                }
                i += 2;
            } else {
                if c > 1e-15 {
                    final_terms.push((c, l));
                }
                i += 1;
            }
        }
        let norm_offset = bound - caller_bound;
        if bound < 0.0 {
            // Even the all-false assignment (sum 0) exceeds the bound.
            self.ok = false;
            return Some(self.push_pb(final_terms, bound, norm_offset));
        }
        let total: f64 = final_terms.iter().map(|(c, _)| c).sum();
        if total <= bound {
            return None; // trivially satisfied
        }
        Some(self.push_pb(final_terms, bound, norm_offset))
    }

    fn push_pb(&mut self, terms: Vec<(f64, Lit)>, bound: f64, norm_offset: f64) -> usize {
        let pi = self.pbs.len() as u32;
        let mut max_coef = 0.0f64;
        let mut sum_true = 0.0;
        for &(c, l) in &terms {
            self.pb_occ[l.code()].push((pi, c));
            max_coef = max_coef.max(c);
            if lit_value(&self.assign, l) == 1 {
                sum_true += c;
            }
        }
        let mut by_coef: Vec<u32> = (0..terms.len() as u32).collect();
        by_coef.sort_by(|&a, &b| {
            terms[b as usize]
                .0
                .partial_cmp(&terms[a as usize].0)
                .expect("coefficients are finite")
                .then(a.cmp(&b))
        });
        self.pbs.push(Pb {
            terms,
            bound,
            norm_offset,
            sum_true,
            max_coef,
            by_coef,
        });
        pi as usize
    }

    /// Tighten the bound of pseudo-Boolean constraint `idx` in place
    /// (`bound` is on the caller's scale, as passed to
    /// [`Solver::add_pb_le`]). Only tightening (a smaller bound) is sound:
    /// learnt clauses derived under the old bound stay implied under the
    /// new one.
    pub fn set_pb_bound(&mut self, idx: usize, bound: f64) {
        self.cancel_until(0);
        let stored = bound + self.pbs[idx].norm_offset;
        debug_assert!(
            stored <= self.pbs[idx].bound + 1e-12,
            "pb bounds may only be tightened"
        );
        self.pbs[idx].bound = stored;
    }

    /// Install — or retighten, when `companion` is given — the implied
    /// cardinality companion of pseudo-Boolean constraint `idx`: if even
    /// the `m + 1` smallest coefficients sum past the bound, then at most
    /// `m` of the constraint's literals can be true. The unit-coefficient
    /// form propagates far more eagerly than the weighted original (once
    /// `m` literals hold, every other literal is implied false at once),
    /// which matters most during UNSAT proofs over near-uniform weights.
    /// Returns the companion's handle; `None` when no strict cardinality
    /// is implied (and none was installed).
    pub fn refresh_pb_cardinality(
        &mut self,
        idx: usize,
        companion: Option<usize>,
    ) -> Option<usize> {
        let pb = &self.pbs[idx];
        // Safety margin errs toward a LARGER (weaker, still implied) cap.
        let margin = 1e-9 * pb.bound.abs().max(1.0);
        let mut sum = 0.0;
        let mut m = 0usize;
        for &ti in pb.by_coef.iter().rev() {
            let next = sum + pb.terms[ti as usize].0;
            if next > pb.bound + margin {
                break;
            }
            sum = next;
            m += 1;
        }
        if m >= pb.terms.len() {
            debug_assert!(companion.is_none(), "cardinality caps only tighten");
            return None; // no strict cardinality implied
        }
        match companion {
            Some(ci) => {
                self.set_pb_bound(ci, m as f64);
                Some(ci)
            }
            None => {
                let unit: Vec<(f64, Lit)> =
                    self.pbs[idx].terms.iter().map(|&(_, l)| (1.0, l)).collect();
                self.add_pb_le(&unit, m as f64)
            }
        }
    }

    /// Search for a model, stopping after `max_conflicts` additional
    /// conflicts if given. Callable repeatedly; learnt clauses and
    /// activities persist across calls.
    pub fn solve(&mut self, max_conflicts: Option<u64>) -> SolveOutcome {
        if !self.ok {
            return SolveOutcome::Unsat;
        }
        self.cancel_until(0);
        // Re-establish level-0 pseudo-Boolean state exactly: bounds may
        // have been tightened between calls, and exact recomputation also
        // clears any accumulated floating-point drift.
        for pi in 0..self.pbs.len() {
            self.pbs[pi].sum_true = self.pbs[pi].exact_sum(&self.assign);
            if self.pbs[pi].sum_true > self.pbs[pi].bound {
                self.ok = false;
                return SolveOutcome::Unsat;
            }
        }
        for pi in 0..self.pbs.len() {
            if let Some(confl) = self.pb_implications(pi as u32) {
                let _ = confl;
                self.ok = false;
                return SolveOutcome::Unsat;
            }
        }
        if self.propagate().is_some() {
            self.ok = false;
            return SolveOutcome::Unsat;
        }

        if self.max_learnts == 0 {
            self.max_learnts = (self.clauses.len() * 2).max(4_000);
        }
        let budget_end = max_conflicts.map(|m| self.stats.conflicts + m);
        let mut restart_seq = 1u64; // index into the Luby sequence
        let mut restart_limit = luby(restart_seq) * RESTART_UNIT;
        let mut conflicts_since_restart = 0u64;
        let mut iters = 0u64;

        loop {
            // `iters == 0` included: a pre-set flag must cancel even
            // instances that would otherwise solve in a handful of steps.
            if iters.is_multiple_of(STOP_POLL) {
                if let Some(stop) = &self.stop {
                    if stop.load(Ordering::Relaxed) {
                        self.cancel_until(0);
                        return SolveOutcome::Canceled;
                    }
                }
            }
            iters += 1;
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_since_restart += 1;
                if self.trail_lim.is_empty() {
                    self.ok = false;
                    return SolveOutcome::Unsat;
                }
                let (learnt, back_level) = self.analyze(confl);
                self.cancel_until(back_level);
                self.attach_learnt(learnt);
                self.act_inc *= ACT_DECAY;
                if self.act_inc > 1e100 {
                    for a in &mut self.activity {
                        *a *= 1e-100;
                    }
                    self.act_inc *= 1e-100;
                }
                self.cla_inc *= CLA_DECAY;
                if self.cla_inc > 1e20 {
                    for c in &mut self.clauses {
                        c.act *= 1e-20;
                    }
                    self.cla_inc *= 1e-20;
                }
                if let Some(end) = budget_end {
                    if self.stats.conflicts >= end {
                        self.cancel_until(0);
                        return SolveOutcome::Limit;
                    }
                }
                if conflicts_since_restart >= restart_limit {
                    restart_seq += 1;
                    restart_limit = luby(restart_seq) * RESTART_UNIT;
                    conflicts_since_restart = 0;
                    self.stats.restarts += 1;
                    self.cancel_until(0);
                    if self.num_learnts > self.max_learnts {
                        self.reduce_db();
                        self.max_learnts += self.max_learnts / 10;
                    }
                }
            } else {
                // Pick the unassigned variable with the highest activity
                // (lowest index on ties: deterministic), decide with its
                // saved phase.
                let mut best: Option<(usize, f64)> = None;
                for (v, &a) in self.activity.iter().enumerate() {
                    if self.assign[v] == 0 && best.is_none_or(|(_, ba)| a > ba) {
                        best = Some((v, a));
                    }
                }
                let Some((v, _)) = best else {
                    return SolveOutcome::Sat; // full assignment
                };
                self.stats.decisions += 1;
                self.trail_lim.push(self.trail.len());
                let lit = if self.saved_phase[v] {
                    Lit::pos(Var(v as u32))
                } else {
                    Lit::neg(Var(v as u32))
                };
                let ok = self.enqueue(lit, Reason::Decision);
                debug_assert!(ok, "decision variable was unassigned");
            }
        }
    }

    fn current_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    fn enqueue(&mut self, l: Lit, reason: Reason) -> bool {
        match lit_value(&self.assign, l) {
            1 => true,
            -1 => false,
            _ => {
                let v = l.var();
                self.assign[v] = if l.is_neg() { -1 } else { 1 };
                self.level[v] = self.current_level();
                self.pos[v] = self.trail.len() as u32;
                self.reason[v] = reason;
                for &(pi, c) in &self.pb_occ[l.code()] {
                    self.pbs[pi as usize].sum_true += c;
                }
                self.trail.push(l);
                true
            }
        }
    }

    fn cancel_until(&mut self, lvl: u32) {
        if self.current_level() <= lvl {
            return;
        }
        let target = self.trail_lim[lvl as usize];
        while self.trail.len() > target {
            let l = self.trail.pop().expect("trail non-empty");
            let v = l.var();
            for &(pi, c) in &self.pb_occ[l.code()] {
                self.pbs[pi as usize].sum_true -= c;
            }
            self.saved_phase[v] = !l.is_neg();
            self.assign[v] = 0;
        }
        self.trail_lim.truncate(lvl as usize);
        self.qhead = target;
    }

    /// Propagate until fixpoint; returns a conflict if one arises.
    fn propagate(&mut self) -> Option<Conflict> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;

            // Clause propagation: clauses watching ¬p just lost a watch.
            let false_lit = p.inverse();
            let mut ws = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut keep = 0;
            let mut confl: Option<Conflict> = None;
            'clauses: for wi in 0..ws.len() {
                let ci = ws[wi];
                let cl = &mut self.clauses[ci as usize];
                // Ensure the false literal sits in slot 1.
                if cl.lits[0] == false_lit {
                    cl.lits.swap(0, 1);
                }
                let first = cl.lits[0];
                if lit_value(&self.assign, first) == 1 {
                    ws[keep] = ci;
                    keep += 1;
                    continue; // satisfied
                }
                // Look for a replacement watch.
                for k in 2..cl.lits.len() {
                    if lit_value(&self.assign, cl.lits[k]) != -1 {
                        cl.lits.swap(1, k);
                        self.watches[cl.lits[1].code()].push(ci);
                        continue 'clauses;
                    }
                }
                // Unit or conflicting.
                ws[keep] = ci;
                keep += 1;
                if !self.enqueue(first, Reason::Clause(ci)) {
                    // Conflict: keep remaining watches, stop.
                    let mut j = wi + 1;
                    while j < ws.len() {
                        ws[keep] = ws[j];
                        keep += 1;
                        j += 1;
                    }
                    confl = Some(Conflict::Clause(ci));
                    break;
                }
            }
            ws.truncate(keep);
            // Replacement watches never target the falsified literal, but
            // merge defensively in case the list gained entries meanwhile.
            let mut gained = std::mem::take(&mut self.watches[false_lit.code()]);
            ws.append(&mut gained);
            self.watches[false_lit.code()] = ws;
            if let Some(c) = confl {
                return Some(c);
            }

            // Pseudo-Boolean propagation for constraints containing p.
            let occ: Vec<u32> = self.pb_occ[p.code()].iter().map(|&(pi, _)| pi).collect();
            for pi in occ {
                if let Some(c) = self.pb_implications(pi) {
                    return Some(c);
                }
            }
        }
        None
    }

    /// Check one pseudo-Boolean constraint for conflict / implications.
    /// Negations of a subset of `pi`'s true literals whose coefficients,
    /// plus `extra`, exceed the bound — greedy over descending
    /// coefficients so learnt clauses stay short and prune hard. Only
    /// literals assigned before trail position `vpos_limit` participate
    /// (pass `u32::MAX` for no limit). Falls back to the full true set
    /// when no strict subset clears the bound with a safe margin over
    /// floating-point reassociation error.
    fn pb_reason_subset(&self, pi: u32, extra: f64, vpos_limit: u32) -> Vec<Lit> {
        let pb = &self.pbs[pi as usize];
        let margin = 1e-9 * pb.bound.abs().max(1.0);
        let mut sum = extra;
        let mut out = Vec::new();
        for &ti in &pb.by_coef {
            let (c, l) = pb.terms[ti as usize];
            if lit_value(&self.assign, l) != 1 || self.pos[l.var()] >= vpos_limit {
                continue;
            }
            sum += c;
            out.push(l.inverse());
            if sum > pb.bound + margin {
                return out;
            }
        }
        out
    }

    fn pb_implications(&mut self, pi: u32) -> Option<Conflict> {
        let pb = &self.pbs[pi as usize];
        // Fast path: nothing can happen while the slack clears the largest
        // coefficient by a safe margin.
        if pb.bound - pb.sum_true > pb.max_coef + 1e-3 {
            return None;
        }
        // Near the bound: recompute the sum in fixed term order so
        // incremental drift cannot flip a decision.
        let exact = pb.exact_sum(&self.assign);
        self.pbs[pi as usize].sum_true = exact;
        let pb = &self.pbs[pi as usize];
        if exact > pb.bound {
            return Some(Conflict::Lits(self.pb_reason_subset(pi, 0.0, u32::MAX)));
        }
        let slack = pb.bound - exact;
        let mut implied: Vec<Lit> = Vec::new();
        for &(c, l) in &pb.terms {
            if c > slack && lit_value(&self.assign, l) == 0 {
                implied.push(l.inverse());
            }
        }
        for l in implied {
            if !self.enqueue(l, Reason::Pb(pi)) {
                // The implied literal is already false, i.e. its term
                // literal is true: together with the other true literals
                // the constraint is violated.
                return Some(Conflict::Lits(self.pb_reason_subset(pi, 0.0, u32::MAX)));
            }
        }
        None
    }

    /// The clausal reason for the implication of `trail`-literal with
    /// variable `v` (every returned literal is false and was assigned
    /// before `v`).
    fn reason_lits(&self, v: usize) -> Vec<Lit> {
        match self.reason[v] {
            Reason::Decision => Vec::new(),
            Reason::Clause(ci) => self.clauses[ci as usize]
                .lits
                .iter()
                .copied()
                .filter(|l| l.var() != v)
                .collect(),
            Reason::Pb(pi) => {
                // Lazy reason: true literals assigned before `v` whose
                // coefficients, plus `v`'s own, exceed the bound (trail
                // position order makes "before" precise).
                let vpos = self.pos[v];
                let own_coef = self.pbs[pi as usize]
                    .terms
                    .iter()
                    .find(|&&(_, t)| t.var() == v)
                    .map(|&(c, _)| c)
                    .unwrap_or(0.0);
                self.pb_reason_subset(pi, own_coef, vpos)
            }
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backtrack level.
    fn analyze(&mut self, confl: Conflict) -> (Vec<Lit>, u32) {
        let cur = self.current_level();
        let mut learnt: Vec<Lit> = Vec::new();
        let mut counter = 0u32;
        let mut idx = self.trail.len();
        let mut reason: Vec<Lit> = match confl {
            Conflict::Clause(ci) => {
                self.bump_clause(ci);
                self.clauses[ci as usize].lits.clone()
            }
            Conflict::Lits(ls) => ls,
        };
        let mut cleanup: Vec<usize> = Vec::new();
        loop {
            for &q in &reason {
                let v = q.var();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    cleanup.push(v);
                    self.activity[v] += self.act_inc;
                    if self.level[v] >= cur {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail backwards to the next marked literal.
            loop {
                idx -= 1;
                if self.seen[self.trail[idx].var()] {
                    break;
                }
            }
            let p = self.trail[idx];
            let v = p.var();
            self.seen[v] = false;
            counter -= 1;
            if counter == 0 {
                learnt.insert(0, p.inverse());
                break;
            }
            if let Reason::Clause(ci) = self.reason[v] {
                self.bump_clause(ci);
            }
            reason = self.reason_lits(v);
        }
        // Minimize: a non-asserting literal whose whole reason lies inside
        // the clause (`seen`, still marked here) or at level 0 is implied
        // by the rest and can be dropped. Reasons point strictly backwards
        // on the trail, so dropping in any order stays sound.
        let mut i = 1;
        while i < learnt.len() {
            let v = learnt[i].var();
            let redundant = !matches!(self.reason[v], Reason::Decision)
                && self
                    .reason_lits(v)
                    .iter()
                    .all(|r| self.level[r.var()] == 0 || self.seen[r.var()]);
            if redundant {
                learnt.swap_remove(i);
            } else {
                i += 1;
            }
        }
        for v in cleanup {
            self.seen[v] = false;
        }
        // Backtrack level: highest level among the non-asserting literals;
        // keep one literal of that level in slot 1 (watch invariant).
        if learnt.len() == 1 {
            return (learnt, 0);
        }
        let mut max_i = 1;
        for i in 2..learnt.len() {
            if self.level[learnt[i].var()] > self.level[learnt[max_i].var()] {
                max_i = i;
            }
        }
        learnt.swap(1, max_i);
        let back = self.level[learnt[1].var()];
        (learnt, back)
    }

    /// Attach a learnt clause and enqueue its asserting literal.
    fn attach_learnt(&mut self, learnt: Vec<Lit>) {
        let assert_lit = learnt[0];
        let reason = if learnt.len() == 1 {
            Reason::Decision
        } else {
            let ci = self.clauses.len() as u32;
            self.watches[learnt[0].code()].push(ci);
            self.watches[learnt[1].code()].push(ci);
            self.clauses.push(Clause {
                lits: learnt,
                learnt: true,
                act: self.cla_inc,
            });
            self.num_learnts += 1;
            Reason::Clause(ci)
        };
        let ok = self.enqueue(assert_lit, reason);
        debug_assert!(ok, "asserting literal must be unassigned after backtrack");
    }

    fn bump_clause(&mut self, ci: u32) {
        let c = &mut self.clauses[ci as usize];
        if c.learnt {
            c.act += self.cla_inc;
        }
    }

    /// Delete the less active half of the learnt clauses (binary and
    /// reason-locked clauses are exempt), compacting the database and
    /// rebuilding watches. Must run at decision level 0.
    fn reduce_db(&mut self) {
        debug_assert!(self.trail_lim.is_empty(), "reduce_db at level 0 only");
        let mut locked = vec![false; self.clauses.len()];
        for &l in &self.trail {
            if let Reason::Clause(ci) = self.reason[l.var()] {
                locked[ci as usize] = true;
            }
        }
        // Deletion candidates, least active first (ties: oldest first).
        let mut cands: Vec<u32> = (0..self.clauses.len() as u32)
            .filter(|&ci| {
                let c = &self.clauses[ci as usize];
                c.learnt && c.lits.len() > 2 && !locked[ci as usize]
            })
            .collect();
        cands.sort_by(|&a, &b| {
            self.clauses[a as usize]
                .act
                .partial_cmp(&self.clauses[b as usize].act)
                .expect("activities are finite")
                .then(a.cmp(&b))
        });
        let mut remove = vec![false; self.clauses.len()];
        for &ci in &cands[..cands.len() / 2] {
            remove[ci as usize] = true;
        }
        let mut map = vec![u32::MAX; self.clauses.len()];
        let mut kept: Vec<Clause> = Vec::with_capacity(self.clauses.len());
        for (i, c) in std::mem::take(&mut self.clauses).into_iter().enumerate() {
            if !remove[i] {
                map[i] = kept.len() as u32;
                kept.push(c);
            }
        }
        self.clauses = kept;
        for w in &mut self.watches {
            w.clear();
        }
        for (i, c) in self.clauses.iter().enumerate() {
            self.watches[c.lits[0].code()].push(i as u32);
            self.watches[c.lits[1].code()].push(i as u32);
        }
        for &l in &self.trail {
            if let Reason::Clause(ci) = self.reason[l.var()] {
                self.reason[l.var()] = Reason::Clause(map[ci as usize]);
            }
        }
        self.num_learnts = self.clauses.iter().filter(|c| c.learnt).count();
    }
}

/// The Luby restart sequence: 1,1,2,1,1,2,4,1,1,2,1,1,2,4,8,…
fn luby(mut i: u64) -> u64 {
    loop {
        let mut k = 1u32;
        while (1u64 << k) - 1 < i {
            k += 1;
        }
        if (1u64 << k) - 1 == i {
            return 1u64 << (k - 1);
        }
        i -= (1u64 << (k - 1)) - 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vars(s: &mut Solver, n: usize) -> Vec<Var> {
        (0..n).map(|_| s.new_var()).collect()
    }

    #[test]
    fn luby_sequence() {
        let expect = [1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        for (i, &e) in expect.iter().enumerate() {
            assert_eq!(luby(i as u64 + 1), e, "luby({})", i + 1);
        }
    }

    #[test]
    fn trivial_sat_and_model() {
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_clause(&[Lit::pos(v[0])]);
        s.add_clause(&[Lit::neg(v[0]), Lit::pos(v[1])]);
        assert_eq!(s.solve(None), SolveOutcome::Sat);
        assert!(s.value(v[0]));
        assert!(s.value(v[1]));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = Solver::new();
        let v = vars(&mut s, 1);
        s.add_clause(&[Lit::pos(v[0])]);
        s.add_clause(&[Lit::neg(v[0])]);
        assert_eq!(s.solve(None), SolveOutcome::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // p[i][j]: pigeon i in hole j. Each pigeon somewhere; no hole holds
        // two pigeons. Requires real conflict analysis to refute.
        let mut s = Solver::new();
        let p: Vec<Vec<Var>> = (0..3).map(|_| vars(&mut s, 2)).collect();
        for row in &p {
            s.add_clause(&[Lit::pos(row[0]), Lit::pos(row[1])]);
        }
        for j in 0..2 {
            for a in 0..3 {
                for b in (a + 1)..3 {
                    s.add_clause(&[Lit::neg(p[a][j]), Lit::neg(p[b][j])]);
                }
            }
        }
        assert_eq!(s.solve(None), SolveOutcome::Unsat);
    }

    #[test]
    fn graph_coloring_sat() {
        // 3-color a 5-cycle (chromatic number 3): satisfiable.
        let mut s = Solver::new();
        let c: Vec<Vec<Var>> = (0..5).map(|_| vars(&mut s, 3)).collect();
        for row in &c {
            let lits: Vec<Lit> = row.iter().map(|&v| Lit::pos(v)).collect();
            s.add_clause(&lits);
        }
        for i in 0..5 {
            let j = (i + 1) % 5;
            for k in 0..3 {
                s.add_clause(&[Lit::neg(c[i][k]), Lit::neg(c[j][k])]);
            }
        }
        assert_eq!(s.solve(None), SolveOutcome::Sat);
        for i in 0..5 {
            let j = (i + 1) % 5;
            for k in 0..3 {
                assert!(!(s.value(c[i][k]) && s.value(c[j][k])), "edge {i}-{j}");
            }
        }
    }

    #[test]
    fn pb_cardinality_enforced() {
        // Σ x_i ≤ 2 over 5 vars, with three forced true → conflict.
        let mut s = Solver::new();
        let v = vars(&mut s, 5);
        let terms: Vec<(f64, Lit)> = v.iter().map(|&x| (1.0, Lit::pos(x))).collect();
        let idx = s.add_pb_le(&terms, 2.0);
        assert!(idx.is_some());
        s.add_clause(&[Lit::pos(v[0])]);
        s.add_clause(&[Lit::pos(v[1])]);
        assert_eq!(s.solve(None), SolveOutcome::Sat);
        let true_count = v.iter().filter(|&&x| s.value(x)).count();
        assert!(true_count <= 2, "cardinality violated: {true_count}");
        s.add_clause(&[Lit::pos(v[2])]);
        s.add_clause(&[Lit::pos(v[3])]);
        assert_eq!(s.solve(None), SolveOutcome::Unsat);
    }

    #[test]
    fn pb_at_least_via_negations() {
        // Σ x_i ≥ 3 over 4 vars ⇔ Σ [¬x_i] ≤ 1.
        let mut s = Solver::new();
        let v = vars(&mut s, 4);
        let terms: Vec<(f64, Lit)> = v.iter().map(|&x| (1.0, Lit::neg(x))).collect();
        s.add_pb_le(&terms, 1.0);
        s.add_clause(&[Lit::neg(v[0])]);
        assert_eq!(s.solve(None), SolveOutcome::Sat);
        let true_count = v.iter().filter(|&&x| s.value(x)).count();
        assert_eq!(true_count, 3);
    }

    #[test]
    fn pb_negative_coefficients_normalize() {
        // 2x − 3y ≤ −1 ⇔ 2x + 3¬y ≤ 2 ⇒ y must be true, x free… check
        // with x forced: 2 − 3y ≤ −1 requires y.
        let mut s = Solver::new();
        let v = vars(&mut s, 2);
        s.add_pb_le(&[(2.0, Lit::pos(v[0])), (-3.0, Lit::pos(v[1]))], -1.0);
        s.add_clause(&[Lit::pos(v[0])]);
        assert_eq!(s.solve(None), SolveOutcome::Sat);
        assert!(s.value(v[1]), "y forced true by the PB constraint");
    }

    #[test]
    fn pb_weighted_knapsack_matches_brute_force() {
        // Feasibility of Σ c_i x_i ≤ B with an at-least-k side constraint,
        // checked against brute force over all 2^6 assignments.
        let coefs = [3.0, 5.0, 7.0, 2.0, 4.0, 6.0];
        for bound in [5.0, 9.0, 13.0, 20.0] {
            for min_true in 0..=4usize {
                let brute = (0u32..64).any(|m| {
                    let w: f64 = (0..6).filter(|&i| m >> i & 1 == 1).map(|i| coefs[i]).sum();
                    let k = (0..6).filter(|&i| m >> i & 1 == 1).count();
                    w <= bound && k >= min_true
                });
                let mut s = Solver::new();
                let v = vars(&mut s, 6);
                let terms: Vec<(f64, Lit)> = v
                    .iter()
                    .zip(coefs)
                    .map(|(&x, c)| (c, Lit::pos(x)))
                    .collect();
                s.add_pb_le(&terms, bound);
                let neg: Vec<(f64, Lit)> = v.iter().map(|&x| (1.0, Lit::neg(x))).collect();
                s.add_pb_le(&neg, (6 - min_true) as f64);
                let got = s.solve(None) == SolveOutcome::Sat;
                assert_eq!(got, brute, "bound={bound} min_true={min_true}");
                if got {
                    let w: f64 = v
                        .iter()
                        .zip(coefs)
                        .filter(|(&x, _)| s.value(x))
                        .map(|(_, c)| c)
                        .sum();
                    assert!(w <= bound + 1e-9);
                    assert!(v.iter().filter(|&&x| s.value(x)).count() >= min_true);
                }
            }
        }
    }

    #[test]
    fn bound_tightening_reaches_optimum() {
        // Minimize Σ c_i x_i subject to "at least 2 true": optimum picks
        // the two cheapest items. Solve-then-tighten until UNSAT.
        let coefs = [9.0, 1.0, 5.0, 3.0];
        let mut s = Solver::new();
        let v = vars(&mut s, 4);
        let neg: Vec<(f64, Lit)> = v.iter().map(|&x| (1.0, Lit::neg(x))).collect();
        s.add_pb_le(&neg, 2.0); // ≥ 2 true
        let obj: Vec<(f64, Lit)> = v
            .iter()
            .zip(coefs)
            .map(|(&x, c)| (c, Lit::pos(x)))
            .collect();
        assert_eq!(s.solve(None), SolveOutcome::Sat);
        let eval = |s: &Solver| -> f64 {
            v.iter()
                .zip(coefs)
                .filter(|(&x, _)| s.value(x))
                .map(|(_, c)| c)
                .sum()
        };
        let mut best = eval(&s);
        let idx = s.add_pb_le(&obj, best - 1e-7).expect("non-trivial bound");
        loop {
            match s.solve(None) {
                SolveOutcome::Sat => {
                    best = eval(&s);
                    s.set_pb_bound(idx, best - 1e-7);
                }
                SolveOutcome::Unsat => break,
                other => panic!("unexpected outcome {other:?}"),
            }
        }
        assert!((best - 4.0).abs() < 1e-9, "optimum 1+3, got {best}");
    }

    #[test]
    fn pb_cardinality_companion_is_implied_and_tightens() {
        let mut s = Solver::new();
        let v = vars(&mut s, 4);
        let terms: Vec<(f64, Lit)> = vec![
            (2.0, Lit::pos(v[0])),
            (2.0, Lit::pos(v[1])),
            (2.0, Lit::pos(v[2])),
            (0.5, Lit::pos(v[3])),
        ];
        let idx = s.add_pb_le(&terms, 3.0).unwrap();
        let card = s.refresh_pb_cardinality(idx, None);
        assert!(card.is_some(), "a strict cardinality cap must be derived");
        assert_eq!(s.solve(None), SolveOutcome::Sat);
        assert!(v.iter().filter(|&&x| s.value(x)).count() <= 2);

        s.set_pb_bound(idx, 1.9);
        let card2 = s.refresh_pb_cardinality(idx, card);
        assert_eq!(card2, card, "companion handle is stable across tightening");
        assert_eq!(s.solve(None), SolveOutcome::Sat);
        // Under bound 1.9 no 2.0-coefficient literal can hold.
        assert!(!s.value(v[0]) && !s.value(v[1]) && !s.value(v[2]));
    }

    #[test]
    fn pre_set_stop_flag_cancels() {
        let mut s = Solver::new();
        let v = vars(&mut s, 30);
        for w in v.windows(2) {
            s.add_clause(&[Lit::pos(w[0]), Lit::pos(w[1])]);
        }
        let stop = Arc::new(AtomicBool::new(true));
        s.set_stop(Some(stop));
        assert_eq!(s.solve(None), SolveOutcome::Canceled);
    }

    #[test]
    fn deterministic_models_across_fresh_solvers() {
        let build = || {
            let mut s = Solver::new();
            let v: Vec<Var> = (0..40).map(|_| s.new_var()).collect();
            for i in 0..39 {
                s.add_clause(&[Lit::pos(v[i]), Lit::pos(v[i + 1])]);
                if i % 3 == 0 {
                    s.add_clause(&[Lit::neg(v[i]), Lit::neg(v[(i + 7) % 40])]);
                }
            }
            let terms: Vec<(f64, Lit)> = v.iter().map(|&x| (1.0, Lit::pos(x))).collect();
            s.add_pb_le(&terms, 25.0);
            assert_eq!(s.solve(None), SolveOutcome::Sat);
            v.iter().map(|&x| s.value(x)).collect::<Vec<bool>>()
        };
        assert_eq!(build(), build(), "solver must be deterministic");
    }
}
