//! Boolean encoding of the CoSA scheduling program (Sec. III-B/C).
//!
//! The encoding mirrors `cosa_core::CosaProgram` exactly — same factor
//! groups, same coefficients, same epsilon placement in every bound — so
//! the SAT backend's feasible set and optimum coincide with the MILP's.
//!
//! Integer allocation counts `n[group][level][mapping]` become **unary
//! ladders**: bit `k` means "count ≥ k+1", with ladder clauses
//! `b[k+1] → b[k]`. Ladder lengths reproduce the MILP variable bounds
//! (including the spatial presolve cap `⌊log_p fanout⌋`), Eq. 3's
//! exactly-`count` allocation becomes a cardinality pair over the group's
//! bits — pure one-hot clauses when the group has a single factor — and
//! Eq. 1–2/4 capacity and fanout bounds become pseudo-Boolean constraints
//! with `log p` coefficients. The permutation block (Table III) is one-hot
//! per row and column; the reuse indicators of Eq. 9–10 (`e`, `Y` and the
//! rank-of-dimension products) are Tseitin-defined in both directions so
//! every model determines them uniquely.
//!
//! The Eq. 12 objective is linear in the ladder and product bits; it is
//! optimized by solve-then-tighten on a single reused pseudo-Boolean
//! bound (see [`SatProgram::optimize`]), with clause learning preserved
//! across iterations.

// Index-heavy constraint assembly mirrors the MILP formulation
// (`cosa_core::formulation`); ranged loops keep the row/column indices
// visibly aligned with the paper's equations.
#![allow(clippy::needless_range_loop)]

use std::sync::atomic::AtomicBool;
use std::sync::Arc;

use cosa_core::{FactorAssignment, ObjectiveWeights};
use cosa_milp::SolveStats;
use cosa_spec::{Arch, DataTensor, Dim, Layer};

use crate::solver::{Lit, SatStats, SolveOutcome, Solver, Var};

/// One aggregated factor group (mirrors the MILP's symmetry reduction).
#[derive(Debug, Clone, Copy)]
struct Group {
    dim: Dim,
    prime: u64,
    count: u32,
    log_p: f64,
}

/// Result of [`SatProgram::optimize`].
#[derive(Debug, Clone)]
pub enum OptimizeOutcome {
    /// Optimality proven: the final incumbent plus an UNSAT proof of the
    /// tightened bound.
    Optimal(FactorAssignment),
    /// Budget exhausted with a feasible incumbent in hand (anytime answer).
    Feasible(FactorAssignment),
    /// The constraints admit no assignment at all.
    Infeasible,
    /// The budget ran out before the first model was found.
    NoSolution,
    /// The stop flag was raised mid-search.
    Canceled,
}

/// The assembled Boolean program for one `(layer, architecture)` pair.
#[derive(Debug)]
pub struct SatProgram {
    solver: Solver,
    groups: Vec<Group>,
    /// `bits[group][level][k]` — unary ladder variables, `k = 0` spatial /
    /// `1` temporal. Ladder length equals the MILP variable's upper bound.
    bits: Vec<Vec<[Vec<Var>; 2]>>,
    active_dims: Vec<Dim>,
    /// `perm[active dim][rank]` one-hot matrix.
    perm: Vec<Vec<Var>>,
    /// Linearized Eq. 12 objective over ladder/product literals.
    obj_terms: Vec<(f64, Lit)>,
    /// Constant part of the objective (precision and input-halo logs),
    /// kept so reported values share the MILP's scale.
    obj_constant: f64,
    /// Handle of the objective-bound constraint once installed.
    obj_pb: Option<usize>,
    /// Handle of the objective's implied-cardinality companion.
    obj_card: Option<usize>,
}

impl SatProgram {
    /// Encode the scheduling program for `layer` on `arch` with Eq. 12
    /// weights (the [`cosa_core::ObjectiveKind::Weighted`] shape).
    pub fn build(layer: &Layer, arch: &Arch, weights: ObjectiveWeights) -> SatProgram {
        let num_levels = arch.num_levels();
        let noc = arch.noc_level();
        let dram = arch.dram_level();
        let mut solver = Solver::new();

        // --- factor groups (identical construction to the MILP) ---------
        let mut groups = Vec::new();
        for d in Dim::ALL {
            for (prime, count) in cosa_spec::primes::factor_counts(layer.dim(d)) {
                groups.push(Group {
                    dim: d,
                    prime,
                    count,
                    log_p: (prime as f64).ln(),
                });
            }
        }

        // --- allocation ladders -----------------------------------------
        let mut bits: Vec<Vec<[Vec<Var>; 2]>> = Vec::with_capacity(groups.len());
        for g in &groups {
            let mut per_level = Vec::with_capacity(num_levels);
            for i in 0..num_levels {
                let fanout = arch.spatial_fanout(i);
                let max_spatial = ((fanout as f64).ln() / g.log_p + 1e-9).floor().max(0.0) as u32;
                let s_len = if fanout > 1 && max_spatial > 0 {
                    g.count.min(max_spatial)
                } else {
                    0
                };
                let spatial = ladder(&mut solver, s_len);
                let temporal = ladder(&mut solver, g.count);
                per_level.push([spatial, temporal]);
            }
            bits.push(per_level);
        }

        // Eq. 3: every factor instance is placed exactly once. With a
        // single instance this is a literal one-hot over the group's bits;
        // otherwise a cardinality pair (≤ count and ≥ count).
        for (gi, g) in groups.iter().enumerate() {
            let all: Vec<Var> = bits[gi].iter().flatten().flatten().copied().collect();
            if g.count == 1 {
                one_hot(&mut solver, &all);
            } else {
                let le: Vec<(f64, Lit)> = all.iter().map(|&b| (1.0, Lit::pos(b))).collect();
                solver.add_pb_le(&le, g.count as f64);
                let ge: Vec<(f64, Lit)> = all.iter().map(|&b| (1.0, Lit::neg(b))).collect();
                solver.add_pb_le(&ge, (all.len() - g.count as usize) as f64);
            }
        }

        // Eq. 4: spatial factors fit the fanout at each level.
        for i in 0..num_levels {
            let fanout = arch.spatial_fanout(i);
            if fanout <= 1 {
                continue;
            }
            let mut terms = Vec::new();
            for (gi, g) in groups.iter().enumerate() {
                for &b in &bits[gi][i][0] {
                    terms.push((g.log_p, Lit::pos(b)));
                }
            }
            solver.add_pb_le(&terms, (fanout as f64).ln() + 1e-9);
        }

        // Eq. 1–2: buffer capacities in the log domain; the occupying set
        // (all slots at levels ≤ I) and the input-halo/precision handling
        // match the MILP line for line.
        for (level_i, lvl) in arch.levels().iter().enumerate() {
            if level_i == dram {
                continue;
            }
            for v in DataTensor::ALL {
                let Some(cap) = lvl.capacity_for(v) else {
                    continue;
                };
                let mut terms = Vec::new();
                for (gi, g) in groups.iter().enumerate() {
                    if !v.relevant_to(g.dim) {
                        continue;
                    }
                    for slots in bits[gi].iter().take(level_i + 1) {
                        for &b in slots.iter().flatten() {
                            terms.push((g.log_p, Lit::pos(b)));
                        }
                    }
                }
                let halo = if v == DataTensor::Inputs {
                    (layer.stride_w() as f64).ln() + (layer.stride_h() as f64).ln()
                } else {
                    0.0
                };
                let rhs = (cap as f64 / arch.precision(v) as f64).ln() - halo + 1e-9;
                solver.add_pb_le(&terms, rhs);
            }
        }

        // --- permutation ranks at the NoC level (Table III) -------------
        let active_dims: Vec<Dim> = Dim::ALL.into_iter().filter(|d| layer.dim(*d) > 1).collect();
        let zslots = active_dims.len();
        let perm: Vec<Vec<Var>> = (0..zslots)
            .map(|_| (0..zslots).map(|_| solver.new_var()).collect())
            .collect();
        for row in &perm {
            one_hot(&mut solver, row);
        }
        for z in 0..zslots {
            let col: Vec<Var> = perm.iter().map(|row| row[z]).collect();
            one_hot(&mut solver, &col);
        }

        // e[j] ⇔ dim j has a temporal factor at the NoC level, i.e. the OR
        // of the first ladder bit (count ≥ 1) of its groups.
        let mut e_vars = Vec::with_capacity(zslots);
        for d in &active_dims {
            let e = solver.new_var();
            let firsts: Vec<Var> = groups
                .iter()
                .enumerate()
                .filter(|(_, g)| g.dim == *d)
                .map(|(gi, _)| bits[gi][noc][1][0])
                .collect();
            define_or(
                &mut solver,
                e,
                &firsts.iter().map(|&b| Lit::pos(b)).collect::<Vec<_>>(),
            );
            e_vars.push(e);
        }

        // a[j][z] ⇔ perm[j][z] ∧ e[j] (shared across tensors).
        let mut a_vars: Vec<Vec<Var>> = Vec::with_capacity(zslots);
        for j in 0..zslots {
            let mut row = Vec::with_capacity(zslots);
            for z in 0..zslots {
                let a = solver.new_var();
                define_and(&mut solver, a, Lit::pos(perm[j][z]), Lit::pos(e_vars[j]));
                row.push(a);
            }
            a_vars.push(row);
        }

        // Y[v][z] ⇔ Y[v][z−1] ∨ ⋁_{j relevant} a[j][z]  (Eq. 9).
        let mut y_vars: Vec<Vec<Var>> = Vec::with_capacity(DataTensor::COUNT);
        for v in DataTensor::ALL {
            let mut per_z: Vec<Var> = Vec::with_capacity(zslots);
            for z in 0..zslots {
                let y = solver.new_var();
                let mut disjuncts: Vec<Lit> = Vec::new();
                if z > 0 {
                    disjuncts.push(Lit::pos(per_z[z - 1]));
                }
                for (j, d) in active_dims.iter().enumerate() {
                    if v.relevant_to(*d) {
                        disjuncts.push(Lit::pos(a_vars[j][z]));
                    }
                }
                define_or(&mut solver, y, &disjuncts);
                per_z.push(y);
            }
            y_vars.push(per_z);
        }

        // s[v][j] ⇔ ⋁_z (perm[j][z] ∧ Y[v][z]): dim j sits at a rank whose
        // Y indicator is on, so its temporal NoC factors multiply tensor
        // v's traffic (the T_v term of Eq. 10).
        let mut s_vars: Vec<Vec<Var>> = Vec::with_capacity(DataTensor::COUNT);
        for (vi, _v) in DataTensor::ALL.iter().enumerate() {
            let mut row = Vec::with_capacity(zslots);
            for j in 0..zslots {
                let mut hs: Vec<Lit> = Vec::with_capacity(zslots);
                for z in 0..zslots {
                    let h = solver.new_var();
                    define_and(
                        &mut solver,
                        h,
                        Lit::pos(perm[j][z]),
                        Lit::pos(y_vars[vi][z]),
                    );
                    hs.push(Lit::pos(h));
                }
                let s = solver.new_var();
                define_or(&mut solver, s, &hs);
                row.push(s);
            }
            s_vars.push(row);
        }

        // --- objective (Eq. 5–8, 11, 12) --------------------------------
        let mut obj_terms: Vec<(f64, Lit)> = Vec::new();
        let mut obj_constant = 0.0;

        // Û and its constants.
        for (level_i, lvl) in arch.levels().iter().enumerate() {
            if level_i == dram {
                continue;
            }
            for v in DataTensor::ALL {
                if !lvl.stores(v) {
                    continue;
                }
                let mut constant = (arch.precision(v) as f64).ln();
                if v == DataTensor::Inputs {
                    constant += (layer.stride_w() as f64).ln() + (layer.stride_h() as f64).ln();
                }
                obj_constant -= weights.w_util * constant;
                for (gi, g) in groups.iter().enumerate() {
                    if !v.relevant_to(g.dim) {
                        continue;
                    }
                    for slots in bits[gi].iter().take(level_i + 1) {
                        for &b in slots.iter().flatten() {
                            obj_terms.push((-weights.w_util * g.log_p, Lit::pos(b)));
                        }
                    }
                }
            }
        }

        // Ĉ: every temporal bit at every level.
        for (gi, g) in groups.iter().enumerate() {
            for slots in &bits[gi] {
                for &b in &slots[1] {
                    obj_terms.push((weights.w_comp * g.log_p, Lit::pos(b)));
                }
            }
        }

        // T̂ = Σ_v D_v + L_v + T_v.
        for (vi, v) in DataTensor::ALL.iter().enumerate() {
            for (gi, g) in groups.iter().enumerate() {
                if !v.relevant_to(g.dim) {
                    continue;
                }
                // D_v: all factors below the NoC level.
                for slots in bits[gi].iter().take(noc) {
                    for &b in slots.iter().flatten() {
                        obj_terms.push((weights.w_traf * g.log_p, Lit::pos(b)));
                    }
                }
                // L_v: spatial factors at the NoC level.
                for &b in &bits[gi][noc][0] {
                    obj_terms.push((weights.w_traf * g.log_p, Lit::pos(b)));
                }
            }
            // T_v: each temporal NoC bit of dim j, gated by s[v][j].
            for (gi, g) in groups.iter().enumerate() {
                let j = active_dims
                    .iter()
                    .position(|d| *d == g.dim)
                    .expect("groups only exist for active dims");
                for &b in &bits[gi][noc][1] {
                    let u = solver.new_var();
                    define_and(&mut solver, u, Lit::pos(b), Lit::pos(s_vars[vi][j]));
                    obj_terms.push((weights.w_traf * g.log_p, Lit::pos(u)));
                }
            }
        }

        SatProgram {
            solver,
            groups,
            bits,
            active_dims,
            perm,
            obj_terms,
            obj_constant,
            obj_pb: None,
            obj_card: None,
        }
    }

    /// Number of variables in the encoding.
    pub fn num_vars(&self) -> usize {
        self.solver.num_vars()
    }

    /// Optimize Eq. 12 by iterative bound-tightening: solve, evaluate the
    /// incumbent, constrain the objective strictly below it, repeat until
    /// UNSAT (optimality proof), budget exhaustion or cancellation.
    /// `conflict_budget` caps total conflicts across all iterations.
    pub fn optimize(
        &mut self,
        conflict_budget: Option<u64>,
        stop: Option<Arc<AtomicBool>>,
    ) -> OptimizeOutcome {
        self.solver.set_stop(stop);
        let budget_end = conflict_budget.map(|b| self.solver.stats.conflicts.saturating_add(b));
        let mut best: Option<FactorAssignment> = None;
        loop {
            let remaining = match budget_end {
                Some(end) => {
                    let r = end.saturating_sub(self.solver.stats.conflicts);
                    if r == 0 {
                        return match best {
                            Some(b) => OptimizeOutcome::Feasible(b),
                            None => OptimizeOutcome::NoSolution,
                        };
                    }
                    Some(r)
                }
                None => None,
            };
            match self.solver.solve(remaining) {
                SolveOutcome::Sat => {
                    let asg = self.decode();
                    let obj = asg.objective;
                    if std::env::var_os("COSA_SAT_TRACE").is_some() {
                        eprintln!(
                            "cosa-sat: incumbent obj={obj:.9} conflicts={}",
                            self.solver.stats.conflicts
                        );
                    }
                    best = Some(asg);
                    // Strict improvement: push the bound just below the
                    // incumbent. The margin also defines the optimality
                    // granularity of the proof.
                    let margin = 1e-7 * obj.abs().max(1.0);
                    let bound = obj - margin - self.obj_constant;
                    match self.obj_pb {
                        Some(idx) => self.solver.set_pb_bound(idx, bound),
                        None => self.obj_pb = self.solver.add_pb_le(&self.obj_terms, bound),
                    }
                    if let Some(idx) = self.obj_pb {
                        self.obj_card = self.solver.refresh_pb_cardinality(idx, self.obj_card);
                    }
                    if self.obj_pb.is_none() {
                        // Objective has no literal terms (degenerate layer):
                        // the first model is the optimum.
                        return OptimizeOutcome::Optimal(best.expect("just set"));
                    }
                }
                SolveOutcome::Unsat => {
                    return match best {
                        Some(b) => OptimizeOutcome::Optimal(b),
                        None => OptimizeOutcome::Infeasible,
                    };
                }
                SolveOutcome::Limit => {
                    return match best {
                        Some(b) => OptimizeOutcome::Feasible(b),
                        None => OptimizeOutcome::NoSolution,
                    };
                }
                SolveOutcome::Canceled => return OptimizeOutcome::Canceled,
            }
        }
    }

    /// Search statistics accumulated so far.
    pub fn stats(&self) -> SatStats {
        self.solver.stats
    }

    /// Read the current model back into the MILP-shaped
    /// [`FactorAssignment`] (counts per slot, permutation ranks, objective
    /// value on the Eq. 12 scale).
    fn decode(&self) -> FactorAssignment {
        let mut counts = Vec::with_capacity(self.groups.len());
        for per_level in &self.bits {
            let mut lv = Vec::with_capacity(per_level.len());
            for slots in per_level {
                lv.push([
                    slots[0].iter().filter(|&&b| self.solver.value(b)).count() as u32,
                    slots[1].iter().filter(|&&b| self.solver.value(b)).count() as u32,
                ]);
            }
            counts.push(lv);
        }
        let mut ranks = [usize::MAX; Dim::COUNT];
        for (j, row) in self.perm.iter().enumerate() {
            for (z, &var) in row.iter().enumerate() {
                if self.solver.value(var) {
                    ranks[self.active_dims[j].index()] = z;
                }
            }
        }
        let mut next = self.active_dims.len();
        for r in ranks.iter_mut() {
            if *r == usize::MAX {
                *r = next;
                next += 1;
            }
        }
        let mut objective = self.obj_constant;
        for &(c, l) in &self.obj_terms {
            if self.solver.value(l.variable()) != l.is_neg() {
                objective += c;
            }
        }
        let stats = self.solver.stats;
        FactorAssignment {
            groups: self
                .groups
                .iter()
                .map(|g| (g.dim, g.prime, g.count))
                .collect(),
            counts,
            ranks,
            objective,
            stats: SolveStats {
                nodes: stats.conflicts as usize,
                simplex_iters: stats.propagations as usize,
                best_bound: objective,
            },
        }
    }
}

/// A unary ladder of `len` bits with `b[k+1] → b[k]` ordering clauses.
fn ladder(solver: &mut Solver, len: u32) -> Vec<Var> {
    let vars: Vec<Var> = (0..len).map(|_| solver.new_var()).collect();
    for w in vars.windows(2) {
        solver.add_clause(&[Lit::neg(w[1]), Lit::pos(w[0])]);
    }
    vars
}

/// Exactly-one over `vars`: an at-least-one clause plus pairwise at-most-one.
fn one_hot(solver: &mut Solver, vars: &[Var]) {
    let lits: Vec<Lit> = vars.iter().map(|&v| Lit::pos(v)).collect();
    solver.add_clause(&lits);
    for (i, &a) in vars.iter().enumerate() {
        for &b in &vars[i + 1..] {
            solver.add_clause(&[Lit::neg(a), Lit::neg(b)]);
        }
    }
}

/// Tseitin definition `target ⇔ ⋁ disjuncts` (both directions).
fn define_or(solver: &mut Solver, target: Var, disjuncts: &[Lit]) {
    let mut clause = Vec::with_capacity(disjuncts.len() + 1);
    clause.push(Lit::neg(target));
    for &d in disjuncts {
        solver.add_clause(&[d.inverse(), Lit::pos(target)]);
        clause.push(d);
    }
    solver.add_clause(&clause);
}

/// Tseitin definition `target ⇔ a ∧ b` (both directions).
fn define_and(solver: &mut Solver, target: Var, a: Lit, b: Lit) {
    solver.add_clause(&[Lit::neg(target), a]);
    solver.add_clause(&[Lit::neg(target), b]);
    solver.add_clause(&[a.inverse(), b.inverse(), Lit::pos(target)]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosa_spec::Arch;

    fn optimal(layer: &Layer, arch: &Arch) -> FactorAssignment {
        let mut p = SatProgram::build(layer, arch, ObjectiveWeights::default());
        match p.optimize(None, None) {
            OptimizeOutcome::Optimal(a) => a,
            other => panic!("expected optimum, got {other:?}"),
        }
    }

    #[test]
    fn factor_counts_are_conserved() {
        // Eq. 3: every prime-factor group places exactly its multiplicity,
        // summed across levels and spatial/temporal slots.
        let arch = Arch::simba_baseline();
        let layer = Layer::matmul("t", 16, 16, 16);
        let asg = optimal(&layer, &arch);
        for (gi, &(_, _, count)) in asg.groups.iter().enumerate() {
            let placed: u32 = asg.counts[gi].iter().map(|lv| lv[0] + lv[1]).sum();
            assert_eq!(placed, count, "group {gi} placement count");
        }
    }

    #[test]
    fn permutation_ranks_are_a_permutation() {
        let arch = Arch::simba_baseline();
        let layer = Layer::conv("t", 1, 1, 8, 8, 8, 8, 1, 1, 1);
        let asg = optimal(&layer, &arch);
        let mut seen = [false; 7];
        for &r in &asg.ranks {
            assert!(r < 7, "rank in range");
            assert!(!seen[r], "rank {r} duplicated");
            seen[r] = true;
        }
    }

    #[test]
    fn spatial_factors_only_where_fanout_allows() {
        // Eq. 4: a level with fanout 1 admits no spatial placement at all.
        let arch = Arch::simba_baseline();
        let layer = Layer::matmul("t", 32, 32, 32);
        let asg = optimal(&layer, &arch);
        for (gi, per_level) in asg.counts.iter().enumerate() {
            for (li, lv) in per_level.iter().enumerate() {
                if arch.spatial_fanout(li) <= 1 {
                    assert_eq!(lv[0], 0, "group {gi} level {li} spatial count");
                }
            }
        }
    }

    #[test]
    fn objective_matches_milp_optimum() {
        // The encoding mirrors the MILP constraint for constraint, so the
        // optima must coincide (up to the bound-tightening granularity).
        let arch = Arch::simba_baseline();
        for layer in [
            Layer::matmul("m", 16, 16, 16),
            Layer::conv("c", 1, 1, 8, 8, 16, 16, 1, 1, 1),
        ] {
            let asg = optimal(&layer, &arch);
            let milp = cosa_core::CosaScheduler::new(&arch)
                .schedule(&layer)
                .expect("milp solves");
            let tol = 1e-6 * milp.milp_objective.abs().max(1.0);
            assert!(
                (asg.objective - milp.milp_objective).abs() < tol,
                "layer {}: sat {} vs milp {}",
                layer.name(),
                asg.objective,
                milp.milp_objective
            );
        }
    }

    #[test]
    fn trace_env_smoke() {
        // COSA_SAT_TRACE only logs; results must be unaffected.
        let arch = Arch::simba_baseline();
        let layer = Layer::matmul("t", 8, 8, 8);
        let a = optimal(&layer, &arch);
        let b = optimal(&layer, &arch);
        assert_eq!(a.objective.to_bits(), b.objective.to_bits());
        assert_eq!(a.counts, b.counts);
    }
}
