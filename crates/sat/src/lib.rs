//! # cosa-sat
//!
//! A from-scratch SAT scheduling backend for the CoSA reproduction: a CDCL
//! solver with pseudo-Boolean constraints ([`Solver`]), an exact encoding
//! of CoSA's prime-factor placement / permutation / capacity constraints
//! ([`encode::SatProgram`]), and a one-shot [`SatScheduler`] that optimizes
//! the Eq. 12 objective by iterative bound-tightening and extracts the same
//! loop-nest schedules as the MILP path.
//!
//! The encoding mirrors `cosa_core::CosaProgram` constraint for constraint
//! (same coefficients, same epsilon placement), so the SAT and MILP
//! backends share one feasible set and one optimum — the portfolio racer
//! in the umbrella crate can take whichever finishes first without
//! changing results.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod encode;
mod scheduler;
mod solver;

pub use encode::SatProgram;
pub use scheduler::{SatError, SatOutcome, SatScheduler};
pub use solver::{Lit, SatStats, SolveOutcome, Solver, Var};
