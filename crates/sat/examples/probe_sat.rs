use std::time::Instant;

fn run(name: &str, layer: &cosa_spec::Layer) {
    let arch = cosa_spec::Arch::simba_baseline();
    let weights = cosa_core::ObjectiveWeights::default();

    let t = Instant::now();
    let mut program = cosa_sat::SatProgram::build(layer, &arch, weights);
    let out = program.optimize(None, None);
    let sat_t = t.elapsed();
    let sat_obj = match out {
        cosa_sat::encode::OptimizeOutcome::Optimal(a) => a.objective,
        cosa_sat::encode::OptimizeOutcome::Feasible(a) => a.objective,
        _ => f64::NAN,
    };
    let st = program.stats();

    let t = Instant::now();
    let cs = cosa_core::CosaScheduler::new(&arch);
    let milp = cs.schedule(layer);
    let milp_t = t.elapsed();
    let milp_obj = milp.map(|r| r.milp_objective).unwrap_or(f64::NAN);

    println!(
        "{name:28} sat {:>9.3}s obj {sat_obj:>14.9} ({} confl) | milp {:>9.3}s obj {milp_obj:>14.9} | diff {:.2e}",
        sat_t.as_secs_f64(), st.conflicts, milp_t.as_secs_f64(), (sat_obj - milp_obj).abs()
    );
}

fn main() {
    use cosa_spec::Layer;
    let shapes: Vec<(&str, Layer)> = vec![
        ("matmul 16x16x16", Layer::matmul("m0", 16, 16, 16)),
        ("matmul 64x64x64", Layer::matmul("m1", 64, 64, 64)),
        ("matmul 256x128x64", Layer::matmul("m2", 256, 128, 64)),
        (
            "conv 1x1 c16 k16 8x8",
            Layer::conv("c0", 1, 1, 8, 8, 16, 16, 1, 1, 1),
        ),
        (
            "conv 3x3 c16 k16 8x8",
            Layer::conv("c1", 3, 3, 8, 8, 16, 16, 1, 1, 1),
        ),
        (
            "conv 3x3 c64 k64 14x14",
            Layer::conv("c2", 3, 3, 14, 14, 64, 64, 1, 1, 1),
        ),
        (
            "conv 7x7 c3 k64 112x112 s2",
            Layer::conv("c3", 7, 7, 112, 112, 3, 64, 1, 2, 2),
        ),
        (
            "conv 1x1 c256 k512 7x7",
            Layer::conv("c4", 1, 1, 7, 7, 256, 512, 1, 1, 1),
        ),
        ("matmul 128x2048 prime", Layer::matmul("m3", 127, 2048, 31)),
    ];
    let only: Option<usize> = std::env::var("SHAPE").ok().and_then(|s| s.parse().ok());
    for (i, (name, layer)) in shapes.iter().enumerate() {
        if only.map_or(false, |o| o != i) {
            continue;
        }
        run(name, layer);
    }
}
