//! The sharding router: a thin `/v1`-only daemon that owns no engine and
//! no cache, just a [`HashRing`] over N shard daemons.
//!
//! Each `POST /v1/schedule` is routed by [`routing_digest`] — the same
//! canonical cache-key digest the shards' stores are named by — to the
//! one shard that owns it, so a digest is solved exactly once
//! fleet-wide and every shard's memory LRU stays hot for its slice of
//! the keyspace. `GET /v1/stats` fans out and merges the fleet (flows
//! sum; each shard owns a private cache dir, so disk-tier sizes sum
//! too, unlike the same-directory engine merge inside one daemon);
//! `GET /v1/healthz` is healthy only when every shard is;
//! `POST /v1/shutdown` optionally cascades to the shards before the
//! router drains itself.
//!
//! The router reuses the whole readiness-driven [`front`](crate::front):
//! bounded queue, 429 shedding, latency ring and graceful drain apply to
//! forwarded traffic unchanged. It speaks only `/v1` — unversioned paths
//! answer 404, there is no deprecated surface to carry forward.

use std::io;
use std::net::{SocketAddr, ToSocketAddrs};
use std::sync::Arc;

use cosa_repro::engine::InterlayerOptions;
use cosa_repro::serve::{
    routing_digest, uses_deprecated_fields, HealthResponse, ScheduleRequest, StatsResponse,
};
use cosa_spec::Arch;
use serde::{Deserialize, Value};

use crate::front::{self, FrontConfig, FrontView, Handler, Routed};
use crate::http::{self, Request};
use crate::shard::HashRing;
use crate::{error_body, ServeConfig, ServerHandle};

/// Router configuration: the transport half is a plain [`ServeConfig`]
/// (cache fields are ignored — the router owns no engine), plus the
/// shard fleet and the shutdown-cascade switch.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Transport configuration (addr/workers/queue/connections/logging)
    /// and the default architecture used to compute routing digests for
    /// requests that carry none. Build with [`ServeConfig::builder`].
    pub serve: ServeConfig,
    /// Shard daemon addresses (`host:port`). Ownership is decided by a
    /// [`HashRing`] over exactly these strings, so every router and
    /// `serve_probe --shards` client configured with the same fleet
    /// agrees.
    pub shards: Vec<String>,
    /// Forward `POST /v1/shutdown` to every shard before draining the
    /// router itself.
    pub cascade_shutdown: bool,
}

impl RouterConfig {
    /// A router over `shards` with default transport settings.
    pub fn new(shards: Vec<String>) -> RouterConfig {
        RouterConfig {
            serve: ServeConfig::builder().build(),
            shards,
            cascade_shutdown: false,
        }
    }
}

/// The shard-forwarding [`Handler`].
struct RouterHandler {
    ring: HashRing,
    default_arch: Arch,
    /// Fleet-default inter-layer options, pinned into routing digests so
    /// "absent" and "explicitly the fleet default" requests colocate.
    default_interlayer: InterlayerOptions,
    cascade_shutdown: bool,
}

impl RouterHandler {
    /// One blocking round trip to a shard. Any transport failure is a
    /// `502` naming the shard — the router's own queue/shedding already
    /// bounded how much traffic waits on it.
    fn forward(&self, shard: &str, method: &str, path: &str, body: &str) -> (u16, String) {
        match shard_addr(shard).and_then(|addr| http::request(addr, method, path, body)) {
            Ok(response) => (response.status, response.body),
            Err(e) => (502, error_body(&format!("shard {shard} unreachable: {e}"))),
        }
    }

    /// Route one schedule request; the third element reports whether the
    /// body used the deprecated top-level `arch`/`scheduler` spelling.
    fn handle_schedule(&self, body: &str) -> (u16, String, bool) {
        // Validate before routing: malformed requests are answered here,
        // identically no matter which shard would have owned them.
        let value: Value = match serde_json::from_str(body) {
            Ok(v) => v,
            Err(e) => {
                return (
                    400,
                    error_body(&format!("malformed request JSON: {e}")),
                    false,
                )
            }
        };
        let deprecated = uses_deprecated_fields(&value);
        let request = match ScheduleRequest::from_value(&value) {
            Ok(r) => r,
            Err(e) => {
                return (
                    400,
                    error_body(&format!("malformed request JSON: {e}")),
                    deprecated,
                )
            }
        };
        if let Err(msg) = request.work_item() {
            return (400, error_body(&msg), deprecated);
        }
        let digest = routing_digest(&request, &self.default_arch, &self.default_interlayer);
        let shard = self.ring.owner(&digest);
        let (status, body) = self.forward(shard, "POST", "/v1/schedule", body);
        (status, body, deprecated)
    }

    fn handle_stats(&self, front: &FrontView<'_>) -> (u16, String) {
        let mut total = StatsResponse {
            queue_depth: front.queue_depth(),
            queue_capacity: front.queue_capacity(),
            rejected: front.rejected(),
            ..StatsResponse::default()
        };
        let (p50, p99, max) = front.latency_micros();
        total.p50_micros = p50;
        total.p99_micros = p99;
        total.max_micros = max;
        for shard in self.ring.shards() {
            let (status, body) = self.forward(shard, "GET", "/v1/stats", "");
            if status != 200 {
                return (
                    502,
                    error_body(&format!("shard {shard} stats failed: {body}")),
                );
            }
            let stats: StatsResponse = match serde_json::from_str(&body) {
                Ok(s) => s,
                Err(e) => {
                    return (
                        502,
                        error_body(&format!("shard {shard} stats unparsable: {e}")),
                    )
                }
            };
            merge_fleet_stats(&mut total, stats);
        }
        (200, serde_json::to_string(&total).expect("stats serialize"))
    }

    fn handle_healthz(&self) -> (u16, String) {
        let mut warm_entries = 0usize;
        let mut noc = false;
        for shard in self.ring.shards() {
            let (status, body) = self.forward(shard, "GET", "/v1/healthz", "");
            if status != 200 {
                return (503, error_body(&format!("shard {shard} unhealthy: {body}")));
            }
            if let Ok(health) = serde_json::from_str::<HealthResponse>(&body) {
                warm_entries += health.warm_entries;
                noc |= health.noc;
            }
        }
        let health = HealthResponse {
            status: "ok".to_string(),
            warm_entries,
            cache_dir: None,
            noc,
        };
        (
            200,
            serde_json::to_string(&health).expect("health serializes"),
        )
    }

    fn handle_shutdown(&self) -> (u16, String) {
        if self.cascade_shutdown {
            for shard in self.ring.shards() {
                // Best-effort: a shard that is already down must not keep
                // the rest of the fleet (or the router) running.
                let _ = self.forward(shard, "POST", "/v1/shutdown", "");
            }
        }
        (
            200,
            error_body("shutting down: draining in-flight requests"),
        )
    }
}

impl Handler for RouterHandler {
    fn handle(&self, request: &Request, front: FrontView<'_>) -> Routed {
        // The router speaks only /v1: unversioned paths are not aliased.
        // Deprecated *request-body* spellings are still flagged, so a
        // modern path with a legacy body gets the header too.
        let mut deprecated = false;
        let (status, body, shutdown) = match (request.method.as_str(), request.path.as_str()) {
            ("POST", "/v1/schedule") => {
                let (status, body, legacy_fields) = self.handle_schedule(&request.body);
                deprecated = legacy_fields;
                (status, body, false)
            }
            ("GET", "/v1/stats") => {
                let (status, body) = self.handle_stats(&front);
                (status, body, false)
            }
            ("GET", "/v1/healthz") => {
                let (status, body) = self.handle_healthz();
                (status, body, false)
            }
            ("POST", "/v1/shutdown") => {
                let (status, body) = self.handle_shutdown();
                (status, body, true)
            }
            ("POST" | "GET", path) => (
                404,
                error_body(&format!("no route {path} (router speaks /v1 only)")),
                false,
            ),
            (method, _) => (
                405,
                error_body(&format!("method {method} not allowed")),
                false,
            ),
        };
        Routed {
            status,
            body,
            deprecated,
            shutdown,
        }
    }
}

fn shard_addr(shard: &str) -> io::Result<SocketAddr> {
    shard
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::other(format!("shard address `{shard}` resolves to nothing")))
}

/// Merge one shard's stats into the fleet total. Counters and latency
/// totals are flows and sum; percentiles merge by max (a conservative
/// fleet-wide bound — exact fleet percentiles would need the raw
/// samples); every disk-tier size also **sums**, because each shard owns
/// a private cache directory — unlike the same-directory engine merge
/// inside one daemon, where sizes merge by max. Public so client-side
/// sharding (`serve_probe --shards`) aggregates fleets identically.
pub fn merge_fleet_stats(total: &mut StatsResponse, s: StatsResponse) {
    total.served += s.served;
    total.errors += s.errors;
    total.rejected += s.rejected;
    total.queue_depth += s.queue_depth;
    total.queue_capacity += s.queue_capacity;
    total.workers += s.workers;
    total.engines += s.engines;
    total.p50_micros = total.p50_micros.max(s.p50_micros);
    total.p99_micros = total.p99_micros.max(s.p99_micros);
    total.max_micros = total.max_micros.max(s.max_micros);
    total.gc_runs += s.gc_runs;
    total.gc_removed += s.gc_removed;

    let cache = s.cache;
    total.cache.hits += cache.hits;
    total.cache.misses += cache.misses;
    total.cache.evictions += cache.evictions;
    total.cache.entries += cache.entries;
    total.cache.bytes += cache.bytes;
    total.cache.noc_sims += cache.noc_sims;
    total.cache.warm_entries += cache.warm_entries;
    total.cache.load_micros += cache.load_micros;
    total.cache.store_errors += cache.store_errors;
    total.cache.dedup_waits += cache.dedup_waits;
    total.cache.in_flight_peak = total.cache.in_flight_peak.max(cache.in_flight_peak);
    total.cache.disk_index_entries += cache.disk_index_entries;
    total.cache.disk_legacy_files += cache.disk_legacy_files;
    total.cache.segment_bytes += cache.segment_bytes;
    total.cache.segment_live_bytes += cache.segment_live_bytes;
    total.cache.segment_dead_bytes += cache.segment_dead_bytes;
    total.cache.compactions += cache.compactions;
    if !cache.disk_format.is_empty() {
        if total.cache.disk_format.is_empty() {
            total.cache.disk_format = cache.disk_format;
        } else if total.cache.disk_format != cache.disk_format {
            total.cache.disk_format = "mixed".to_string();
        }
    }
    for win in cache.backend_wins {
        match total
            .cache
            .backend_wins
            .iter_mut()
            .find(|t| t.backend == win.backend)
        {
            Some(t) => {
                t.wins += win.wins;
                t.win_micros += win.win_micros;
            }
            None => total.cache.backend_wins.push(win),
        }
    }
    total
        .cache
        .backend_wins
        .sort_by(|a, b| a.backend.cmp(&b.backend));
}

/// The router daemon.
pub struct Router;

impl Router {
    /// Start a router for `config`, returning the same handle type the
    /// shard daemons use (the router is just another front).
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the address cannot be bound, or
    /// `InvalidInput` for an empty shard list.
    pub fn start(config: RouterConfig) -> io::Result<ServerHandle> {
        if config.shards.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "router needs at least one shard",
            ));
        }
        let handler = Arc::new(RouterHandler {
            ring: HashRing::new(config.shards.clone()),
            default_arch: config.serve.default_arch.clone(),
            default_interlayer: config.serve.interlayer,
            cascade_shutdown: config.cascade_shutdown,
        });
        let front = front::start(
            FrontConfig {
                addr: config.serve.addr.clone(),
                workers: config.serve.workers,
                queue_capacity: config.serve.queue_capacity,
                max_connections: config.serve.max_connections,
                request_delay: config.serve.request_delay,
                log_requests: config.serve.log_requests,
            },
            handler,
        )?;
        if config.serve.log_requests {
            println!(
                "[router] listening on {} — {} shards: {}",
                front.addr(),
                config.shards.len(),
                config.shards.join(", "),
            );
        }
        Ok(ServerHandle { front })
    }
}
