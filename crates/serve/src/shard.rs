//! Consistent hashing of canonical cache-key digests onto a fleet of
//! shard daemons.
//!
//! The cache already names every schedule by a canonical digest
//! (`cosa_spec::canon` — see `Engine::cache_key` and
//! [`cosa_repro::serve::routing_digest`]); the ring maps each digest to
//! exactly one shard, so a shard's memory LRU and single-flight map stay
//! hot for *its* slice of the keyspace and the fleet solves each digest
//! once. Classic ring construction: every shard contributes
//! [`HashRing::REPLICAS`] virtual points (hash of `addr#replica`), a key
//! hashes to a point, and the first shard point clockwise owns it —
//! adding or removing one shard only remaps the `1/N` of the keyspace
//! adjacent to its points.
//!
//! Both the `cosa-router` daemon and `serve_probe --shards` (client-side
//! sharding) route through this type, so they always agree on ownership.

use cosa_spec::canon;

/// A consistent-hash ring over shard addresses.
#[derive(Debug, Clone)]
pub struct HashRing {
    shards: Vec<String>,
    /// `(point, shard index)` sorted by point — the ring, flattened.
    points: Vec<(u64, usize)>,
}

/// Hash anything onto the ring's `u64` point space: both 64-bit halves
/// of the canonical digest, folded together and run through a strong
/// bit-mix finalizer (the murmur3 fmix64 constants).
///
/// The finalizer matters: the digest is FNV-1a, whose raw output
/// clusters badly for short, similar inputs — exactly what the
/// `addr#replica` virtual-point names are. Without it a 3-shard ring
/// splits the keyspace as unevenly as 56/8/35 and small workloads land
/// entirely on one shard.
fn ring_point(key: &str) -> u64 {
    let digest = canon::digest128_hex(key.as_bytes());
    let lo = u64::from_str_radix(&digest[..16], 16).expect("digest is hex");
    let hi = u64::from_str_radix(&digest[16..], 16).expect("digest is hex");
    let mut x = lo ^ hi.rotate_left(32);
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^= x >> 33;
    x
}

impl HashRing {
    /// Virtual points per shard. Enough that a 3-shard fleet splits the
    /// keyspace within a few percent of evenly; small enough that ring
    /// construction is trivially cheap.
    pub const REPLICAS: usize = 64;

    /// Build a ring over `shards` (typically `host:port` strings). Order
    /// does not matter: the same set always yields the same ring, which
    /// is what lets the router and client-side sharding agree.
    ///
    /// # Panics
    ///
    /// Panics when `shards` is empty — an empty fleet cannot own keys.
    pub fn new(shards: Vec<String>) -> HashRing {
        assert!(!shards.is_empty(), "hash ring needs at least one shard");
        let mut points = Vec::with_capacity(shards.len() * Self::REPLICAS);
        for (index, shard) in shards.iter().enumerate() {
            for replica in 0..Self::REPLICAS {
                points.push((ring_point(&format!("{shard}#{replica}")), index));
            }
        }
        // Ties (a 1-in-2^64 event) resolve by shard index, keeping the
        // ring deterministic regardless of input order after the sort.
        points.sort_unstable();
        HashRing { shards, points }
    }

    /// The shards the ring was built over, in construction order.
    pub fn shards(&self) -> &[String] {
        &self.shards
    }

    /// The shard owning `key` (a canonical digest, but any string keys
    /// consistently): the first ring point clockwise from the key's hash.
    pub fn owner(&self, key: &str) -> &str {
        let point = ring_point(key);
        let at = self
            .points
            .partition_point(|(p, _)| *p < point)
            .checked_rem(self.points.len())
            .expect("ring is non-empty");
        &self.shards[self.points[at].1]
    }

    /// The index (into [`HashRing::shards`]) of the shard owning `key`.
    pub fn owner_index(&self, key: &str) -> usize {
        let point = ring_point(key);
        let at = self
            .points
            .partition_point(|(p, _)| *p < point)
            .checked_rem(self.points.len())
            .expect("ring is non-empty");
        self.points[at].1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fleet(n: usize) -> Vec<String> {
        (0..n).map(|i| format!("127.0.0.1:{}", 9000 + i)).collect()
    }

    #[test]
    fn ownership_is_deterministic_and_order_independent() {
        let a = HashRing::new(fleet(3));
        let mut reversed = fleet(3);
        reversed.reverse();
        let b = HashRing::new(reversed);
        for i in 0..200 {
            let key = canon::digest128_hex(format!("key-{i}").as_bytes());
            assert_eq!(
                a.owner(&key),
                b.owner(&key),
                "shard-set order must not matter"
            );
            assert_eq!(a.owner(&key), a.owner(&key));
        }
    }

    #[test]
    fn keys_spread_across_every_shard() {
        let ring = HashRing::new(fleet(3));
        let mut counts = [0usize; 3];
        for i in 0..600 {
            let key = canon::digest128_hex(format!("key-{i}").as_bytes());
            counts[ring.owner_index(&key)] += 1;
        }
        for (i, count) in counts.iter().enumerate() {
            assert!(
                *count > 600 / 5,
                "shard {i} owns {count}/600 keys — ring is badly skewed: {counts:?}"
            );
        }
    }

    #[test]
    fn removing_a_shard_only_remaps_its_keys() {
        let three = HashRing::new(fleet(3));
        let two = HashRing::new(fleet(2));
        let (mut stable, mut moved) = (0usize, 0usize);
        for i in 0..600 {
            let key = canon::digest128_hex(format!("key-{i}").as_bytes());
            let owner = three.owner(&key);
            if owner == three.shards()[2] {
                continue; // Owned by the removed shard: must remap.
            }
            if two.owner(&key) == owner {
                stable += 1;
            } else {
                moved += 1;
            }
        }
        assert!(
            moved * 10 < stable,
            "consistent hashing must keep surviving shards' keys in place \
             (stable {stable}, moved {moved})"
        );
    }
}
