//! A minimal readiness API over Linux `epoll`, built directly on raw
//! syscalls through the libc the binary already links — no vendored
//! dependencies, no new crates. This is the mechanism that decouples
//! connection count from worker count in the serving front: thousands of
//! idle or byte-trickling connections cost one registered fd each, and a
//! worker thread is only involved once a *complete* request has been
//! parsed off the socket.
//!
//! Two types:
//!
//! * [`Poller`] — an `epoll` instance: register/modify/deregister fds with
//!   a `u64` token and [`Interest`] flags, then [`Poller::wait`] for
//!   batches of [`Event`]s. Level-triggered (the default epoll mode), so a
//!   handler that does not fully drain a socket is simply woken again.
//! * [`Waker`] — an `eventfd` registered with the poller, used by worker
//!   threads to interrupt a blocked [`Poller::wait`] when a response
//!   becomes ready to write. Writes are async-signal-safe and never block
//!   (the eventfd counter saturates).
//!
//! The wrapper is deliberately Linux-only (the repo's deployment target);
//! it compiles against the platform libc via `extern "C"` declarations of
//! the four syscalls it needs, keeping the no-new-deps constraint the
//! ROADMAP set for this tier.

use std::io;
use std::os::fd::{AsRawFd, FromRawFd, OwnedFd, RawFd};

// The epoll/eventfd surface used below, declared against the platform
// libc (always linked by std on Linux). Numeric constants are part of the
// stable kernel ABI.
use std::ffi::c_int;

extern "C" {
    fn epoll_create1(flags: c_int) -> c_int;
    fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
    fn epoll_wait(epfd: c_int, events: *mut EpollEvent, maxevents: c_int, timeout: c_int) -> c_int;
    fn eventfd(initval: u32, flags: c_int) -> c_int;
    fn read(fd: c_int, buf: *mut u8, count: usize) -> isize;
    fn write(fd: c_int, buf: *const u8, count: usize) -> isize;
}

const EPOLL_CLOEXEC: c_int = 0o2000000;
const EPOLL_CTL_ADD: c_int = 1;
const EPOLL_CTL_DEL: c_int = 2;
const EPOLL_CTL_MOD: c_int = 3;

const EPOLLIN: u32 = 0x001;
const EPOLLOUT: u32 = 0x004;
const EPOLLERR: u32 = 0x008;
const EPOLLHUP: u32 = 0x010;
const EPOLLRDHUP: u32 = 0x2000;

const EFD_CLOEXEC: c_int = 0o2000000;
const EFD_NONBLOCK: c_int = 0o4000;

/// The kernel's `struct epoll_event`. On x86-64 the kernel ABI packs it
/// to 12 bytes (no padding between `events` and `data`), hence
/// `repr(packed)` — using the natural 16-byte layout here would corrupt
/// every token the kernel hands back.
#[repr(C, packed)]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

/// What readiness to watch a registered fd for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer half-closed).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Readable only.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
    /// Writable only.
    pub const WRITE: Interest = Interest {
        readable: false,
        writable: true,
    };
    /// Neither — keep the fd registered for error/hangup delivery only
    /// (epoll always reports `EPOLLERR`/`EPOLLHUP`).
    pub const NONE: Interest = Interest {
        readable: false,
        writable: false,
    };

    fn bits(self) -> u32 {
        let mut bits = EPOLLRDHUP; // Always learn about half-closes.
        if self.readable {
            bits |= EPOLLIN;
        }
        if self.writable {
            bits |= EPOLLOUT;
        }
        bits
    }
}

/// One readiness event: the registered token plus what fired.
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// The `u64` token the fd was registered with.
    pub token: u64,
    /// Readable (includes peer half-close: a read will not block).
    pub readable: bool,
    /// Writable.
    pub writable: bool,
    /// Error or hangup: the connection is beyond saving.
    pub error: bool,
}

/// An `epoll` instance owning its fd.
#[derive(Debug)]
pub struct Poller {
    epfd: OwnedFd,
}

fn cvt(ret: c_int) -> io::Result<c_int> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

impl Poller {
    /// Create an epoll instance (close-on-exec).
    ///
    /// # Errors
    ///
    /// Returns the `epoll_create1` errno.
    pub fn new() -> io::Result<Poller> {
        let fd = cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) })?;
        // SAFETY: epoll_create1 returned a fresh fd we now own.
        Ok(Poller {
            epfd: unsafe { OwnedFd::from_raw_fd(fd) },
        })
    }

    fn ctl(&self, op: c_int, fd: RawFd, events: u32, token: u64) -> io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        cvt(unsafe { epoll_ctl(self.epfd.as_raw_fd(), op, fd, &mut ev) })?;
        Ok(())
    }

    /// Register `fd` under `token` with `interest`.
    ///
    /// # Errors
    ///
    /// Returns the `epoll_ctl` errno (e.g. `EEXIST` for a double add).
    pub fn add(&self, fd: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd.as_raw_fd(), interest.bits(), token)
    }

    /// Change an already-registered fd's interest (token may change too).
    ///
    /// # Errors
    ///
    /// Returns the `epoll_ctl` errno.
    pub fn modify(&self, fd: &impl AsRawFd, token: u64, interest: Interest) -> io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd.as_raw_fd(), interest.bits(), token)
    }

    /// Deregister `fd`. Harmless to call for an fd the kernel already
    /// dropped (closing an fd removes it from every epoll set).
    pub fn delete(&self, fd: &impl AsRawFd) {
        // ENOENT/EBADF here mean "already gone" — not an error the event
        // loop can act on.
        let _ = self.ctl(EPOLL_CTL_DEL, fd.as_raw_fd(), 0, 0);
    }

    /// Block for up to `timeout_millis` (`None` = forever) and append the
    /// ready events to `out`. Returns the number appended; `0` means the
    /// timeout elapsed. `EINTR` is retried internally.
    ///
    /// # Errors
    ///
    /// Returns the `epoll_wait` errno.
    pub fn wait(&self, out: &mut Vec<Event>, timeout_millis: Option<i32>) -> io::Result<usize> {
        const BATCH: usize = 128;
        let mut buf = [EpollEvent { events: 0, data: 0 }; BATCH];
        let timeout = timeout_millis.unwrap_or(-1);
        let n = loop {
            let ret = unsafe {
                epoll_wait(
                    self.epfd.as_raw_fd(),
                    buf.as_mut_ptr(),
                    BATCH as c_int,
                    timeout,
                )
            };
            if ret >= 0 {
                break ret as usize;
            }
            let err = io::Error::last_os_error();
            if err.kind() != io::ErrorKind::Interrupted {
                return Err(err);
            }
        };
        for ev in &buf[..n] {
            // `repr(packed)` fields must be copied out before use.
            let (events, data) = (ev.events, ev.data);
            out.push(Event {
                token: data,
                readable: events & (EPOLLIN | EPOLLRDHUP) != 0,
                writable: events & EPOLLOUT != 0,
                error: events & (EPOLLERR | EPOLLHUP) != 0,
            });
        }
        Ok(n)
    }
}

/// An `eventfd`-based wakeup channel: any thread calls [`Waker::wake`],
/// the poller's event loop sees a readable event on the token the waker
/// was registered under and calls [`Waker::drain`].
#[derive(Debug)]
pub struct Waker {
    fd: OwnedFd,
}

impl Waker {
    /// Create a non-blocking eventfd and register it with `poller` under
    /// `token` (read interest).
    ///
    /// # Errors
    ///
    /// Returns the `eventfd`/`epoll_ctl` errno.
    pub fn new(poller: &Poller, token: u64) -> io::Result<Waker> {
        let fd = cvt(unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) })?;
        // SAFETY: eventfd returned a fresh fd we now own.
        let fd = unsafe { OwnedFd::from_raw_fd(fd) };
        poller.add(&fd, token, Interest::READ)?;
        Ok(Waker { fd })
    }

    /// Wake the event loop. Never blocks: the eventfd counter just
    /// accumulates, and a full counter (EAGAIN) already guarantees a
    /// pending wakeup.
    pub fn wake(&self) {
        let one: u64 = 1;
        let _ = unsafe { write(self.fd.as_raw_fd(), (&one as *const u64).cast(), 8) };
    }

    /// Clear the pending wakeup count (called by the event loop when the
    /// waker's token fires).
    pub fn drain(&self) {
        let mut buf = [0u8; 8];
        let _ = unsafe { read(self.fd.as_raw_fd(), buf.as_mut_ptr(), 8) };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write as _;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn poller_reports_listener_and_stream_readiness() {
        let poller = Poller::new().unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        poller.add(&listener, 7, Interest::READ).unwrap();

        // Nothing pending: a short wait times out.
        let mut events = Vec::new();
        poller.wait(&mut events, Some(10)).unwrap();
        assert!(events.is_empty(), "no readiness before a connect");

        // A connect makes the listener readable with our token.
        let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
        poller.wait(&mut events, Some(2000)).unwrap();
        assert!(
            events.iter().any(|e| e.token == 7 && e.readable),
            "{events:?}"
        );

        // Accept, register the server side, and observe bytes arriving.
        let (conn, _) = listener.accept().unwrap();
        conn.set_nonblocking(true).unwrap();
        poller.add(&conn, 8, Interest::READ).unwrap();
        client.write_all(b"ping").unwrap();
        events.clear();
        poller.wait(&mut events, Some(2000)).unwrap();
        assert!(
            events.iter().any(|e| e.token == 8 && e.readable),
            "{events:?}"
        );

        // Modify to write interest: an un-backlogged socket is writable.
        poller.modify(&conn, 8, Interest::WRITE).unwrap();
        events.clear();
        poller.wait(&mut events, Some(2000)).unwrap();
        assert!(
            events.iter().any(|e| e.token == 8 && e.writable),
            "{events:?}"
        );
        poller.delete(&conn);
    }

    #[test]
    fn waker_interrupts_a_blocked_wait_and_drains() {
        let poller = Poller::new().unwrap();
        let waker = std::sync::Arc::new(Waker::new(&poller, 1).unwrap());
        let w = waker.clone();
        let t = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(50));
            w.wake();
            w.wake(); // Coalesces: still one readable event.
        });
        let mut events = Vec::new();
        poller.wait(&mut events, Some(5000)).unwrap();
        assert!(
            events.iter().any(|e| e.token == 1 && e.readable),
            "{events:?}"
        );
        waker.drain();
        events.clear();
        poller.wait(&mut events, Some(10)).unwrap();
        assert!(events.is_empty(), "drained waker is quiet");
        t.join().unwrap();
    }
}
