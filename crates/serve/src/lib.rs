//! # cosa-serve
//!
//! A long-lived scheduling daemon over the batch
//! [`Engine`](cosa_repro::engine::Engine): the serving front-end the
//! ROADMAP names. One process owns a (shared, persistent) schedule-cache
//! directory, answers `POST /v1/schedule` requests with canonical
//! [`Scheduled`](cosa_repro::api::Scheduled) /
//! [`NetworkReport`](cosa_repro::engine::NetworkReport) JSON, and keeps
//! the disk tier bounded with a [`GcPolicy`] sweep at startup and every N
//! requests.
//!
//! The wire protocol lives in [`cosa_repro::serve`]; the HTTP/1.1 subset
//! (hand-rolled over [`std::net`], no vendored deps) in [`http`]; the
//! epoll readiness layer in [`poll`]; the event-loop front in [`front`].
//!
//! # Architecture
//!
//! ```text
//!        event-loop thread (epoll)            worker pool (N threads)
//!  accept ─► nonblocking parse ─► bounded queue ─pop─► route → respond
//!                 │ full?                               │
//!                 └──► 429 from the loop                └──► Engine
//!                                                      (shared, cache-dir
//!                                                       warm)
//! ```
//!
//! * **Readiness-driven front** — one epoll event loop owns every
//!   connection; a worker is involved only once a *complete* request has
//!   been parsed, so connection count decouples from worker count and a
//!   byte-trickling client cannot pin a worker (see [`front`]).
//! * **Bounded queue** — complete requests wait in a FIFO of at most
//!   `queue_capacity`; beyond that the event loop answers `429` without
//!   touching a worker, so overload degrades crisply instead of piling up
//!   latency.
//! * **Warm restarts** — the engine loads the cache dir before the
//!   listener binds, so `/v1/healthz` answering at all means warm-start is
//!   done; a restarted daemon serves its whole request set with zero
//!   solver calls and zero NoC simulations.
//! * **Graceful shutdown** — `POST /v1/shutdown` (or
//!   [`ServerHandle::shutdown`]) stops dispatching, answers new arrivals
//!   `503`, flushes every in-flight response, then joins all threads.
//! * **Versioned wire API** — routes live under `/v1/`; the original
//!   unversioned paths remain as deprecated aliases that answer with a
//!   `Deprecation: true` header. The sharding [`router`] speaks only
//!   `/v1`.
//!
//! # Example
//!
//! ```no_run
//! use cosa_serve::{http, ServeConfig, Server};
//! use cosa_repro::serve::ScheduleRequest;
//! use cosa_spec::Suite;
//!
//! let config = ServeConfig::builder().workers(2).build();
//! let handle = Server::start(config).expect("bind");
//! let req = ScheduleRequest::for_suite(Suite::AlexNet);
//! let body = serde_json::to_string(&req).unwrap();
//! let resp = http::request(handle.addr(), "POST", "/v1/schedule", &body).unwrap();
//! assert!(resp.is_ok());
//! handle.shutdown().expect("clean shutdown");
//! ```

#![warn(missing_docs)]

pub mod cli;
pub mod front;
pub mod http;
pub mod poll;
pub mod router;
pub mod shard;

use std::collections::HashMap;
use std::io;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use cosa_repro::engine::{CacheStats, Engine, GcPolicy, InterlayerOptions, StoreFormat};
use cosa_repro::serve::{
    scheduler_from_name, uses_deprecated_fields, CommonArgs, HealthResponse, ScheduleRequest,
    ScheduleResponse, StatsResponse,
};
use cosa_spec::{canon, Arch, Network, Suite};
use serde::{Deserialize, Value};

use front::{FrontConfig, FrontView, Handler, Routed};
use http::Request;

/// Daemon configuration. Construct through [`ServeConfig::builder`];
/// `Default` is a loopback ephemeral-port daemon with no persistence and
/// GC off.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Bound on queued (complete, undispatched) requests; beyond it the
    /// event loop answers `429`.
    pub queue_capacity: usize,
    /// Bound on simultaneously open connections; beyond it new accepts
    /// are dropped outright. Idle and mid-parse connections are cheap
    /// (one fd + a parse buffer), so this sits far above `workers`.
    pub max_connections: usize,
    /// Shared persistent schedule-cache directory, when set.
    pub cache_dir: Option<PathBuf>,
    /// Cross-process solve-lock staleness bound (`None` = the engine's
    /// default). Must comfortably exceed the worst-case solve time, or
    /// another daemon sharing the cache dir takes over a *live* solver's
    /// lock and duplicates its work.
    pub lock_staleness: Option<Duration>,
    /// Enable engine-level NoC evaluation.
    pub noc: bool,
    /// Disk-tier storage format (`Segment` = packed `segment.cosa`,
    /// `Legacy` = one JSON file per digest). Only meaningful with
    /// `cache_dir` set.
    pub cache_format: StoreFormat,
    /// Disk-tier GC policy (no-op when unbounded or memory-only).
    pub gc: GcPolicy,
    /// Run GC every this many served schedule requests (0 = startup only).
    pub gc_every: u64,
    /// Default architecture for requests that don't carry one.
    pub default_arch: Arch,
    /// Default inter-layer residency options for network/suite requests
    /// that don't carry an `options.interlayer` object (disabled unless
    /// the daemon was started with `--interlayer`).
    pub interlayer: InterlayerOptions,
    /// Artificial per-request service delay — load-shedding
    /// instrumentation that makes overload and drain behaviour
    /// deterministic in tests and load probes. `None` in production.
    pub request_delay: Option<Duration>,
    /// Log one line per request to stdout (the daemon's CI artifact).
    pub log_requests: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            queue_capacity: 64,
            max_connections: 1024,
            cache_dir: None,
            lock_staleness: None,
            noc: false,
            cache_format: StoreFormat::default(),
            gc: GcPolicy::default(),
            gc_every: 64,
            default_arch: Arch::simba_baseline(),
            interlayer: InterlayerOptions::disabled(),
            request_delay: None,
            log_requests: false,
        }
    }
}

impl ServeConfig {
    /// Start building a config from the defaults.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder {
            config: ServeConfig::default(),
        }
    }
}

/// Builder for [`ServeConfig`] — the one way daemons, routers, probes and
/// tests assemble a config, so a new field lands everywhere at once
/// instead of in N struct literals.
#[derive(Debug, Clone)]
pub struct ServeConfigBuilder {
    config: ServeConfig,
}

impl ServeConfigBuilder {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    #[must_use]
    pub fn addr(mut self, addr: impl Into<String>) -> Self {
        self.config.addr = addr.into();
        self
    }

    /// Worker threads handling requests.
    #[must_use]
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Bound on queued complete requests before `429` shedding.
    #[must_use]
    pub fn queue_capacity(mut self, capacity: usize) -> Self {
        self.config.queue_capacity = capacity;
        self
    }

    /// Bound on simultaneously open connections.
    #[must_use]
    pub fn max_connections(mut self, max: usize) -> Self {
        self.config.max_connections = max;
        self
    }

    /// Persistent schedule-cache directory.
    #[must_use]
    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.config.cache_dir = Some(dir.into());
        self
    }

    /// Optional cache directory (CLI mapping convenience).
    #[must_use]
    pub fn maybe_cache_dir(mut self, dir: Option<PathBuf>) -> Self {
        self.config.cache_dir = dir;
        self
    }

    /// Cross-process solve-lock staleness bound.
    #[must_use]
    pub fn lock_staleness(mut self, staleness: Duration) -> Self {
        self.config.lock_staleness = Some(staleness);
        self
    }

    /// Enable engine-level NoC evaluation.
    #[must_use]
    pub fn noc(mut self, noc: bool) -> Self {
        self.config.noc = noc;
        self
    }

    /// Disk-tier storage format.
    #[must_use]
    pub fn cache_format(mut self, format: StoreFormat) -> Self {
        self.config.cache_format = format;
        self
    }

    /// Disk-tier GC policy.
    #[must_use]
    pub fn gc(mut self, gc: GcPolicy) -> Self {
        self.config.gc = gc;
        self
    }

    /// Run GC every this many served schedule requests (0 = startup only).
    #[must_use]
    pub fn gc_every(mut self, every: u64) -> Self {
        self.config.gc_every = every;
        self
    }

    /// Default architecture for requests that don't carry one.
    #[must_use]
    pub fn default_arch(mut self, arch: Arch) -> Self {
        self.config.default_arch = arch;
        self
    }

    /// Default inter-layer residency options for requests that don't
    /// carry an `options.interlayer` object.
    #[must_use]
    pub fn interlayer(mut self, options: InterlayerOptions) -> Self {
        self.config.interlayer = options;
        self
    }

    /// Artificial per-request service delay (tests and load probes).
    #[must_use]
    pub fn request_delay(mut self, delay: Duration) -> Self {
        self.config.request_delay = Some(delay);
        self
    }

    /// Log one line per request to stdout.
    #[must_use]
    pub fn log_requests(mut self, log: bool) -> Self {
        self.config.log_requests = log;
        self
    }

    /// Apply the shared `--scheduler`/`--cache-format`/`--cache-dir`/
    /// `--lock-staleness-secs`/`--noc` flag set parsed by
    /// [`CommonArgs`] (the per-request scheduler choice does not live in
    /// the daemon config and is ignored here).
    #[must_use]
    pub fn common(mut self, common: &CommonArgs) -> Self {
        self.config.cache_format = common.cache_format;
        self.config.lock_staleness = common.lock_staleness;
        if common.cache_dir.is_some() {
            self.config.cache_dir = common.cache_dir.clone();
        }
        if common.noc {
            self.config.noc = true;
        }
        self.config.interlayer = common.interlayer;
        self
    }

    /// Finish: the assembled [`ServeConfig`].
    #[must_use]
    pub fn build(self) -> ServeConfig {
        self.config
    }
}

/// Strip the `/v1` version prefix, reporting whether the request used it.
/// `/v1/schedule` → (`/schedule`, versioned); `/schedule` →
/// (`/schedule`, unversioned — a deprecated alias when it matches a
/// route).
fn split_version(path: &str) -> (&str, bool) {
    match path.strip_prefix("/v1") {
        Some(rest) if rest.starts_with('/') => (rest, true),
        _ => (path, false),
    }
}

/// GC counters the engine handler exposes through `/v1/stats`.
#[derive(Debug, Default)]
struct GcCounters {
    gc_runs: AtomicU64,
    gc_removed: AtomicU64,
    /// Schedule requests since the last GC sweep (drives `gc_every`).
    since_gc: AtomicU64,
}

/// The engine-backed request handler: everything above the transport.
/// Owns the architecture-keyed engine map, the GC cadence and the
/// `/v1/*` routing table; the [`front`] owns sockets, the queue and the
/// latency/served/rejected counters.
struct EngineHandler {
    config: ServeConfig,
    /// Engines keyed by the canonical digest of their architecture; the
    /// default architecture's engine is created at startup (its warm load
    /// gates readiness), others lazily per request. All share one cache
    /// directory, deduplicating through the content-addressed store.
    engines: Mutex<HashMap<String, Arc<Engine>>>,
    default_engine: Arc<Engine>,
    /// Cache counters folded in from non-retained (over-cap) engines, so
    /// `/v1/stats` never loses solver activity — a `--expect-warm` style
    /// zero-solve check must see every miss, resident engine or not.
    overflow_stats: Mutex<CacheStats>,
    gc: GcCounters,
}

impl EngineHandler {
    /// Bound on architecture-keyed engines kept resident. Each engine
    /// carries its own in-memory cache front (warm-loaded from the shared
    /// dir), so an attacker mutating one arch field per request must not
    /// be able to grow the daemon without bound.
    const MAX_RESIDENT_ENGINES: usize = 8;

    /// The engine for a request's architecture (the default engine when
    /// the request carries none or repeats the default), plus whether it
    /// is retained in the resident map. Callers must fold a non-retained
    /// engine's counters into [`EngineHandler::overflow_stats`] when done
    /// with it.
    fn engine_for(&self, arch: Option<Arch>) -> io::Result<(Arc<Engine>, bool)> {
        let Some(arch) = arch else {
            return Ok((self.default_engine.clone(), true));
        };
        if &arch == self.default_engine.arch() {
            return Ok((self.default_engine.clone(), true));
        }
        let key = arch_digest(&arch);
        if let Some(engine) = self.engines.lock().expect("engines lock").get(&key) {
            return Ok((engine.clone(), true));
        }
        // Built outside the lock: a warm load can take a while and must
        // not stall requests for other architectures.
        let engine = build_engine(&self.config, arch, SECONDARY_ENGINE_CACHE_BYTES)?;
        let mut engines = self.engines.lock().expect("engines lock");
        // A racing request for the same arch may have inserted first;
        // keep the incumbent (replacing it would discard its cache
        // counters and make /v1/stats deltas go backwards).
        if let Some(existing) = engines.get(&key) {
            return Ok((existing.clone(), true));
        }
        // At the cap the engine serves this request but is not retained
        // (it still reads/writes the shared store, so repeated shapes
        // stay deduplicated across requests — just without a resident
        // memory front for the overflow architecture; each such request
        // re-pays the warm load, a deliberate memory-over-latency trade
        // for the >8-architectures corner).
        if engines.len() < Self::MAX_RESIDENT_ENGINES {
            engines.insert(key, engine.clone());
            return Ok((engine, true));
        }
        Ok((engine, false))
    }

    /// Sum cache counters over every resident engine plus everything
    /// folded in from non-retained ones.
    fn summed_cache_stats(&self) -> CacheStats {
        let mut total = self.overflow_stats.lock().expect("overflow lock").clone();
        let engines = self.engines.lock().expect("engines lock");
        for engine in engines.values() {
            add_cache_stats(&mut total, engine.cache_stats());
        }
        total
    }

    /// Fold a non-retained engine's final counters into the running
    /// overflow total (its resident-set numbers die with it, so only the
    /// monotonic activity counters are kept).
    fn fold_overflow_stats(&self, engine: &Engine) {
        let mut stats = engine.cache_stats();
        // The engine is being dropped: its resident entries/bytes are no
        // longer part of the daemon's footprint. The disk-tier shape it
        // observed belongs to the shared directory, which the retained
        // engines keep reporting — only the monotonic compaction count
        // survives the fold.
        stats.entries = 0;
        stats.bytes = 0;
        stats.warm_entries = 0;
        stats.disk_format = String::new();
        stats.disk_index_entries = 0;
        stats.disk_legacy_files = 0;
        stats.segment_bytes = 0;
        stats.segment_live_bytes = 0;
        stats.segment_dead_bytes = 0;
        add_cache_stats(
            &mut self.overflow_stats.lock().expect("overflow lock"),
            stats,
        );
    }

    /// Run one GC sweep over the shared cache directory (no-op without a
    /// store or with an unbounded policy).
    fn run_gc(&self, trigger: &str) {
        if self.config.gc.is_unbounded() {
            return;
        }
        if let Some(result) = self.default_engine.gc_store(&self.config.gc) {
            match result {
                Ok(report) => {
                    self.gc.gc_runs.fetch_add(1, Ordering::Relaxed);
                    self.gc
                        .gc_removed
                        .fetch_add(report.removed as u64, Ordering::Relaxed);
                    if self.config.log_requests {
                        println!(
                            "[serve] gc ({trigger}): removed {} of {} entries, {} bytes kept",
                            report.removed, report.examined, report.retained_bytes
                        );
                    }
                }
                Err(e) => eprintln!("[serve] gc ({trigger}) failed: {e}"),
            }
        }
    }

    /// Count a served schedule request and trigger the every-N GC sweep.
    fn after_schedule_request(&self) {
        if self.config.gc_every == 0 {
            return;
        }
        let since = self.gc.since_gc.fetch_add(1, Ordering::Relaxed) + 1;
        if since >= self.config.gc_every {
            self.gc.since_gc.store(0, Ordering::Relaxed);
            self.run_gc("periodic");
        }
    }

    /// Answer one schedule request. The third element reports whether the
    /// body used the deprecated top-level `arch`/`scheduler` spelling
    /// (answered normally, but with a `Deprecation: true` header).
    fn handle_schedule(&self, body: &str) -> (u16, String, bool) {
        // Parse to a Value first so the deprecated spelling is detectable
        // independently of how `ScheduleRequest` folds it in.
        let value: Value = match serde_json::from_str(body) {
            Ok(v) => v,
            Err(e) => {
                return (
                    400,
                    error_body(&format!("malformed request JSON: {e}")),
                    false,
                )
            }
        };
        let deprecated = uses_deprecated_fields(&value);
        let request = match ScheduleRequest::from_value(&value) {
            Ok(r) => r,
            Err(e) => {
                return (
                    400,
                    error_body(&format!("malformed request JSON: {e}")),
                    deprecated,
                )
            }
        };
        let (status, body) = self.handle_schedule_request(&request);
        (status, body, deprecated)
    }

    fn handle_schedule_request(&self, request: &ScheduleRequest) -> (u16, String) {
        if let Err(msg) = request.work_item() {
            return (400, error_body(&msg));
        }
        // Derived deserialization accepts structurally valid but
        // semantically broken architectures (no levels, NoC level out of
        // range, ...); validate before any solver code can trip over one.
        if let Some(arch) = request.arch() {
            if let Err(e) = arch.validate() {
                return (400, error_body(&format!("invalid architecture: {e}")));
            }
        }
        // Resolve the work item before touching an engine: a bad suite
        // name must not cost a lazy engine build.
        let network = match (&request.network, &request.suite) {
            (Some(network), _) => Some(network.clone()),
            (None, Some(name)) => match name.parse::<Suite>() {
                Ok(suite) => Some(Network::from_suite(suite)),
                Err(e) => return (400, error_body(&e.to_string())),
            },
            (None, None) => None, // work_item() guarantees `layer` is set.
        };

        let (engine, retained) = match self.engine_for(request.arch().cloned()) {
            Ok(engine) => engine,
            Err(e) => return (500, error_body(&format!("engine unavailable: {e}"))),
        };
        let scheduler = match scheduler_from_name(request.scheduler_name(), engine.arch()) {
            Ok(s) => s,
            Err(msg) => return (400, error_body(&msg)),
        };
        let interlayer = request.interlayer_or(&self.config.interlayer);

        let outcome = match (&request.layer, network) {
            (Some(layer), _) => engine
                .schedule_layer(scheduler.as_ref(), layer)
                .map(ScheduleResponse::from_scheduled)
                .map_err(|e| e.to_string()),
            (None, Some(network)) => {
                let run = engine.schedule_network_with(&network, scheduler.as_ref(), &interlayer);
                Ok(ScheduleResponse::from_report(run.report))
            }
            (None, None) => unreachable!("work_item() guarantees one item"),
        };
        // A non-retained engine is dropped here; bank its counters so
        // /v1/stats still accounts for the solver work it did.
        if !retained {
            self.fold_overflow_stats(&engine);
        }
        match outcome {
            Ok(response) => {
                self.after_schedule_request();
                (
                    200,
                    serde_json::to_string(&response).expect("response serializes"),
                )
            }
            Err(message) => (422, error_body(&message)),
        }
    }

    fn handle_stats(&self, front: &FrontView<'_>) -> String {
        let engines = self.engines.lock().expect("engines lock").len();
        let cache = self.summed_cache_stats();
        let (p50_micros, p99_micros, max_micros) = front.latency_micros();
        let stats = StatsResponse {
            served: front.served(),
            errors: front.errors(),
            rejected: front.rejected(),
            queue_depth: front.queue_depth(),
            queue_capacity: front.queue_capacity(),
            workers: front.workers(),
            engines,
            p50_micros,
            p99_micros,
            max_micros,
            gc_runs: self.gc.gc_runs.load(Ordering::Relaxed),
            gc_removed: self.gc.gc_removed.load(Ordering::Relaxed),
            cache,
        };
        serde_json::to_string(&stats).expect("stats serialize")
    }

    fn handle_healthz(&self) -> String {
        let health = HealthResponse {
            status: "ok".to_string(),
            warm_entries: self.default_engine.cache_stats().warm_entries,
            cache_dir: self
                .config
                .cache_dir
                .as_ref()
                .map(|d| d.display().to_string()),
            noc: self.config.noc,
        };
        serde_json::to_string(&health).expect("health serializes")
    }
}

impl Handler for EngineHandler {
    fn handle(&self, request: &Request, front: FrontView<'_>) -> Routed {
        let (path, versioned) = split_version(&request.path);
        let deprecated = !versioned;
        match (request.method.as_str(), path) {
            ("POST", "/schedule") => {
                let (status, body, legacy_fields) = self.handle_schedule(&request.body);
                Routed {
                    status,
                    body,
                    deprecated: deprecated || legacy_fields,
                    shutdown: false,
                }
            }
            ("GET", "/stats") => Routed {
                status: 200,
                body: self.handle_stats(&front),
                deprecated,
                shutdown: false,
            },
            ("GET", "/healthz") => Routed {
                status: 200,
                body: self.handle_healthz(),
                deprecated,
                shutdown: false,
            },
            ("POST", "/shutdown") => Routed {
                status: 200,
                body: error_body("shutting down: draining in-flight requests"),
                deprecated,
                shutdown: true,
            },
            ("POST" | "GET", _) => Routed::new(404, error_body(&format!("no route {path}"))),
            (method, _) => Routed::new(405, error_body(&format!("method {method} not allowed"))),
        }
    }
}

fn arch_digest(arch: &Arch) -> String {
    let json = serde_json::to_string(arch).expect("arch serializes");
    canon::digest128_hex(json.as_bytes())
}

/// Byte bound on each *secondary* (non-default-arch) engine's in-memory
/// cache front. Every engine warm-loads the whole shared directory (keys
/// are opaque digests, so entries cannot be filtered by architecture up
/// front); bounding the secondaries keeps worst-case residency at
/// `MAX_RESIDENT_ENGINES × 64 MiB` instead of N copies of the directory.
const SECONDARY_ENGINE_CACHE_BYTES: u64 = 64 * 1024 * 1024;

/// Build an engine for `arch`; `cache_bytes` > 0 bounds its in-memory
/// front (0 = unbounded, for the default engine).
fn build_engine(config: &ServeConfig, arch: Arch, cache_bytes: u64) -> io::Result<Arc<Engine>> {
    let mut engine = Engine::new(arch);
    if cache_bytes > 0 {
        engine = engine.with_cache_bytes(cache_bytes);
    }
    if config.noc {
        engine = engine.with_noc();
    }
    if let Some(staleness) = config.lock_staleness {
        engine = engine.with_lock_staleness(staleness);
    }
    engine = engine.with_cache_format(config.cache_format);
    if let Some(dir) = &config.cache_dir {
        engine = engine.with_cache_dir(dir)?;
    }
    Ok(Arc::new(engine))
}

/// Accumulate one engine's counters into a running total.
pub(crate) fn add_cache_stats(total: &mut CacheStats, s: CacheStats) {
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
    total.entries += s.entries;
    total.bytes += s.bytes;
    total.noc_sims += s.noc_sims;
    total.warm_entries += s.warm_entries;
    total.load_micros += s.load_micros;
    total.store_errors += s.store_errors;
    total.dedup_waits += s.dedup_waits;
    // A peak is a high-water mark, not a flow: summing engines' peaks
    // would overstate concurrency that never coincided.
    total.in_flight_peak = total.in_flight_peak.max(s.in_flight_peak);
    // Every engine observes the same shared cache directory, so disk-tier
    // sizes and counts merge by max (summing would multiply one directory
    // by the engine count); the per-engine compaction tallies are flows
    // and sum. Formats agree unless a probe mixed tiers explicitly.
    total.disk_index_entries = total.disk_index_entries.max(s.disk_index_entries);
    total.disk_legacy_files = total.disk_legacy_files.max(s.disk_legacy_files);
    total.segment_bytes = total.segment_bytes.max(s.segment_bytes);
    total.segment_live_bytes = total.segment_live_bytes.max(s.segment_live_bytes);
    total.segment_dead_bytes = total.segment_dead_bytes.max(s.segment_dead_bytes);
    total.compactions += s.compactions;
    if !s.disk_format.is_empty() {
        if total.disk_format.is_empty() {
            total.disk_format = s.disk_format;
        } else if total.disk_format != s.disk_format {
            total.disk_format = "mixed".to_string();
        }
    }
    // Per-backend win tallies merge by name, keeping the sorted order.
    for win in s.backend_wins {
        match total
            .backend_wins
            .iter_mut()
            .find(|t| t.backend == win.backend)
        {
            Some(t) => {
                t.wins += win.wins;
                t.win_micros += win.win_micros;
            }
            None => total.backend_wins.push(win),
        }
    }
    total.backend_wins.sort_by(|a, b| a.backend.cmp(&b.backend));
}

fn error_body(message: &str) -> String {
    serde_json::to_string(&ScheduleResponse::from_error(message)).expect("error serializes")
}

/// The daemon. [`Server::start`] warm-starts the default engine, runs the
/// startup GC sweep, binds the listener and spawns the event loop +
/// worker pool, returning a [`ServerHandle`].
pub struct Server;

impl Server {
    /// Start a daemon for `config`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the cache dir cannot be opened or the
    /// address cannot be bound.
    pub fn start(config: ServeConfig) -> io::Result<ServerHandle> {
        // Warm start before binding: a connectable daemon is a ready one.
        let default_engine = build_engine(&config, config.default_arch.clone(), 0)?;

        let mut engines = HashMap::new();
        engines.insert(arch_digest(default_engine.arch()), default_engine.clone());
        let handler = Arc::new(EngineHandler {
            engines: Mutex::new(engines),
            default_engine,
            overflow_stats: Mutex::new(CacheStats::default()),
            gc: GcCounters::default(),
            config: config.clone(),
        });
        handler.run_gc("startup");

        let front = front::start(
            FrontConfig {
                addr: config.addr.clone(),
                workers: config.workers,
                queue_capacity: config.queue_capacity,
                max_connections: config.max_connections,
                request_delay: config.request_delay,
                log_requests: config.log_requests,
            },
            handler.clone(),
        )?;

        if config.log_requests {
            println!(
                "[serve] listening on {} — {} workers, queue {} — {} warm entries{}",
                front.addr(),
                config.workers,
                config.queue_capacity,
                handler.default_engine.cache_stats().warm_entries,
                config
                    .cache_dir
                    .as_ref()
                    .map(|d| format!(", cache dir {}", d.display()))
                    .unwrap_or_default(),
            );
        }
        Ok(ServerHandle { front })
    }
}

/// A running daemon: its bound address plus shutdown/join control.
pub struct ServerHandle {
    front: front::FrontHandle,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the actual ephemeral port).
    pub fn addr(&self) -> std::net::SocketAddr {
        self.front.addr()
    }

    /// Signal shutdown without waiting: stop dispatching, answer new
    /// arrivals `503`, let workers drain the queue. Idempotent.
    pub fn begin_shutdown(&self) {
        self.front.begin_shutdown();
    }

    /// Block until the daemon exits (a `POST /v1/shutdown` or a prior
    /// [`ServerHandle::begin_shutdown`]). In-flight and queued requests
    /// finish first.
    ///
    /// # Errors
    ///
    /// Returns an error when a daemon thread panicked.
    pub fn join(self) -> io::Result<()> {
        self.front.join()
    }

    /// Graceful shutdown: [`ServerHandle::begin_shutdown`] then
    /// [`ServerHandle::join`].
    ///
    /// # Errors
    ///
    /// Returns an error when a daemon thread panicked.
    pub fn shutdown(self) -> io::Result<()> {
        self.begin_shutdown();
        self.join()
    }
}
