//! # cosa-serve
//!
//! A long-lived scheduling daemon over the batch
//! [`Engine`](cosa_repro::engine::Engine): the serving front-end the
//! ROADMAP names. One process owns a (shared, persistent) schedule-cache
//! directory, answers `POST /schedule` requests with canonical
//! [`Scheduled`](cosa_repro::api::Scheduled) /
//! [`NetworkReport`](cosa_repro::engine::NetworkReport) JSON, and keeps
//! the disk tier bounded with a [`GcPolicy`] sweep at startup and every N
//! requests.
//!
//! The wire protocol lives in [`cosa_repro::serve`]; the HTTP/1.1 subset
//! (hand-rolled over [`std::net`], no vendored deps) in [`http`].
//!
//! # Architecture
//!
//! ```text
//!             acceptor thread               worker pool (N threads)
//!  TcpListener ──accept──► bounded queue ──pop──► parse → route → respond
//!                   │ full?                         │
//!                   └──► 429 immediately            └──► Engine (shared,
//!                                                        cache-dir warm)
//! ```
//!
//! * **Bounded queue** — accepted connections wait in a FIFO of at most
//!   `queue_capacity`; beyond that the acceptor answers `429` without
//!   touching a worker, so overload degrades crisply instead of piling up
//!   latency.
//! * **Warm restarts** — the engine loads the cache dir before the
//!   listener binds, so `/healthz` answering at all means warm-start is
//!   done; a restarted daemon serves its whole request set with zero
//!   solver calls and zero NoC simulations.
//! * **Graceful shutdown** — `POST /shutdown` (or
//!   [`ServerHandle::shutdown`]) stops accepting, lets workers drain every
//!   queued connection, then joins all threads.
//!
//! # Example
//!
//! ```no_run
//! use cosa_serve::{http, ServeConfig, Server};
//! use cosa_repro::serve::ScheduleRequest;
//! use cosa_spec::Suite;
//!
//! let handle = Server::start(ServeConfig::default()).expect("bind");
//! let req = ScheduleRequest::for_suite(Suite::AlexNet);
//! let body = serde_json::to_string(&req).unwrap();
//! let resp = http::request(handle.addr(), "POST", "/schedule", &body).unwrap();
//! assert!(resp.is_ok());
//! handle.shutdown().expect("clean shutdown");
//! ```

#![warn(missing_docs)]

pub mod cli;
pub mod http;

use std::collections::{HashMap, VecDeque};
use std::io;
use std::io::Read as _;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use cosa_repro::engine::{CacheStats, Engine, GcPolicy, StoreFormat};
use cosa_repro::serve::{
    scheduler_from_name, HealthResponse, LatencyRecorder, ScheduleRequest, ScheduleResponse,
    StatsResponse,
};
use cosa_spec::{canon, Arch, Network, Suite};

use http::{read_request, write_response, Request};

/// Daemon configuration. Fields are public; `Default` is a loopback
/// ephemeral-port daemon with no persistence and GC off.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads handling requests.
    pub workers: usize,
    /// Bound on queued (accepted, unhandled) connections; beyond it the
    /// acceptor answers `429`.
    pub queue_capacity: usize,
    /// Shared persistent schedule-cache directory, when set.
    pub cache_dir: Option<PathBuf>,
    /// Cross-process solve-lock staleness bound (`None` = the engine's
    /// default). Must comfortably exceed the worst-case solve time, or
    /// another daemon sharing the cache dir takes over a *live* solver's
    /// lock and duplicates its work.
    pub lock_staleness: Option<Duration>,
    /// Enable engine-level NoC evaluation.
    pub noc: bool,
    /// Disk-tier storage format (`Segment` = packed `segment.cosa`,
    /// `Legacy` = one JSON file per digest). Only meaningful with
    /// `cache_dir` set.
    pub cache_format: StoreFormat,
    /// Disk-tier GC policy (no-op when unbounded or memory-only).
    pub gc: GcPolicy,
    /// Run GC every this many served schedule requests (0 = startup only).
    pub gc_every: u64,
    /// Default architecture for requests that don't carry one.
    pub default_arch: Arch,
    /// Artificial per-request service delay — load-shedding
    /// instrumentation that makes overload and drain behaviour
    /// deterministic in tests and load probes. `None` in production.
    pub request_delay: Option<Duration>,
    /// Log one line per request to stdout (the daemon's CI artifact).
    pub log_requests: bool,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            queue_capacity: 64,
            cache_dir: None,
            lock_staleness: None,
            noc: false,
            cache_format: StoreFormat::default(),
            gc: GcPolicy::default(),
            gc_every: 64,
            default_arch: Arch::simba_baseline(),
            request_delay: None,
            log_requests: false,
        }
    }
}

/// Counters the daemon exposes through `/stats`.
#[derive(Debug, Default)]
struct Counters {
    served: AtomicU64,
    errors: AtomicU64,
    rejected: AtomicU64,
    gc_runs: AtomicU64,
    gc_removed: AtomicU64,
    /// Schedule requests since the last GC sweep (drives `gc_every`).
    since_gc: AtomicU64,
}

/// Everything the acceptor, workers and handlers share.
struct ServerState {
    config: ServeConfig,
    addr: SocketAddr,
    /// Engines keyed by the canonical digest of their architecture; the
    /// default architecture's engine is created at startup (its warm load
    /// gates readiness), others lazily per request. All share one cache
    /// directory, deduplicating through the content-addressed store.
    engines: Mutex<HashMap<String, Arc<Engine>>>,
    default_engine: Arc<Engine>,
    /// Cache counters folded in from non-retained (over-cap) engines, so
    /// `/stats` never loses solver activity — a `--expect-warm` style
    /// zero-solve check must see every miss, resident engine or not.
    overflow_stats: Mutex<CacheStats>,
    queue: Mutex<VecDeque<TcpStream>>,
    queue_ready: Condvar,
    shutdown: AtomicBool,
    counters: Counters,
    latency: Mutex<LatencyRecorder>,
}

impl ServerState {
    /// Bound on architecture-keyed engines kept resident. Each engine
    /// carries its own in-memory cache front (warm-loaded from the shared
    /// dir), so an attacker mutating one arch field per request must not
    /// be able to grow the daemon without bound.
    const MAX_RESIDENT_ENGINES: usize = 8;

    /// The engine for a request's architecture (the default engine when
    /// the request carries none or repeats the default), plus whether it
    /// is retained in the resident map. Callers must fold a non-retained
    /// engine's counters into [`ServerState::overflow_stats`] when done
    /// with it.
    fn engine_for(&self, arch: Option<Arch>) -> io::Result<(Arc<Engine>, bool)> {
        let Some(arch) = arch else {
            return Ok((self.default_engine.clone(), true));
        };
        if &arch == self.default_engine.arch() {
            return Ok((self.default_engine.clone(), true));
        }
        let key = arch_digest(&arch);
        if let Some(engine) = self.engines.lock().expect("engines lock").get(&key) {
            return Ok((engine.clone(), true));
        }
        // Built outside the lock: a warm load can take a while and must
        // not stall requests for other architectures.
        let engine = build_engine(&self.config, arch, SECONDARY_ENGINE_CACHE_BYTES)?;
        let mut engines = self.engines.lock().expect("engines lock");
        // A racing request for the same arch may have inserted first;
        // keep the incumbent (replacing it would discard its cache
        // counters and make /stats deltas go backwards).
        if let Some(existing) = engines.get(&key) {
            return Ok((existing.clone(), true));
        }
        // At the cap the engine serves this request but is not retained
        // (it still reads/writes the shared store, so repeated shapes
        // stay deduplicated across requests — just without a resident
        // memory front for the overflow architecture; each such request
        // re-pays the warm load, a deliberate memory-over-latency trade
        // for the >8-architectures corner).
        if engines.len() < Self::MAX_RESIDENT_ENGINES {
            engines.insert(key, engine.clone());
            return Ok((engine, true));
        }
        Ok((engine, false))
    }

    /// Sum cache counters over every resident engine plus everything
    /// folded in from non-retained ones.
    fn summed_cache_stats(&self) -> CacheStats {
        let mut total = self.overflow_stats.lock().expect("overflow lock").clone();
        let engines = self.engines.lock().expect("engines lock");
        for engine in engines.values() {
            add_cache_stats(&mut total, engine.cache_stats());
        }
        total
    }

    /// Fold a non-retained engine's final counters into the running
    /// overflow total (its resident-set numbers die with it, so only the
    /// monotonic activity counters are kept).
    fn fold_overflow_stats(&self, engine: &Engine) {
        let mut stats = engine.cache_stats();
        // The engine is being dropped: its resident entries/bytes are no
        // longer part of the daemon's footprint. The disk-tier shape it
        // observed belongs to the shared directory, which the retained
        // engines keep reporting — only the monotonic compaction count
        // survives the fold.
        stats.entries = 0;
        stats.bytes = 0;
        stats.warm_entries = 0;
        stats.disk_format = String::new();
        stats.disk_index_entries = 0;
        stats.disk_legacy_files = 0;
        stats.segment_bytes = 0;
        stats.segment_live_bytes = 0;
        stats.segment_dead_bytes = 0;
        add_cache_stats(
            &mut self.overflow_stats.lock().expect("overflow lock"),
            stats,
        );
    }

    /// Run one GC sweep over the shared cache directory (no-op without a
    /// store or with an unbounded policy).
    fn run_gc(&self, trigger: &str) {
        if self.config.gc.is_unbounded() {
            return;
        }
        if let Some(result) = self.default_engine.gc_store(&self.config.gc) {
            match result {
                Ok(report) => {
                    self.counters.gc_runs.fetch_add(1, Ordering::Relaxed);
                    self.counters
                        .gc_removed
                        .fetch_add(report.removed as u64, Ordering::Relaxed);
                    if self.config.log_requests {
                        println!(
                            "[serve] gc ({trigger}): removed {} of {} entries, {} bytes kept",
                            report.removed, report.examined, report.retained_bytes
                        );
                    }
                }
                Err(e) => eprintln!("[serve] gc ({trigger}) failed: {e}"),
            }
        }
    }

    /// Count a served schedule request and trigger the every-N GC sweep.
    fn after_schedule_request(&self) {
        self.counters.served.fetch_add(1, Ordering::Relaxed);
        if self.config.gc_every == 0 {
            return;
        }
        let since = self.counters.since_gc.fetch_add(1, Ordering::Relaxed) + 1;
        if since >= self.config.gc_every {
            self.counters.since_gc.store(0, Ordering::Relaxed);
            self.run_gc("periodic");
        }
    }

    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return; // Already shutting down.
        }
        self.queue_ready.notify_all();
        // Unblock the acceptor's blocking `accept` with a dummy connect;
        // it observes the flag before queueing. An unspecified bind IP
        // (0.0.0.0 / [::]) is not itself connectable everywhere, so dial
        // the loopback of the same family instead.
        let mut wake = self.addr;
        if wake.ip().is_unspecified() {
            let loopback: std::net::IpAddr = if wake.is_ipv4() {
                std::net::Ipv4Addr::LOCALHOST.into()
            } else {
                std::net::Ipv6Addr::LOCALHOST.into()
            };
            wake.set_ip(loopback);
        }
        let _ = TcpStream::connect_timeout(&wake, Duration::from_secs(1));
    }
}

fn arch_digest(arch: &Arch) -> String {
    let json = serde_json::to_string(arch).expect("arch serializes");
    canon::digest128_hex(json.as_bytes())
}

/// Byte bound on each *secondary* (non-default-arch) engine's in-memory
/// cache front. Every engine warm-loads the whole shared directory (keys
/// are opaque digests, so entries cannot be filtered by architecture up
/// front); bounding the secondaries keeps worst-case residency at
/// `MAX_RESIDENT_ENGINES × 64 MiB` instead of N copies of the directory.
const SECONDARY_ENGINE_CACHE_BYTES: u64 = 64 * 1024 * 1024;

/// Build an engine for `arch`; `cache_bytes` > 0 bounds its in-memory
/// front (0 = unbounded, for the default engine).
fn build_engine(config: &ServeConfig, arch: Arch, cache_bytes: u64) -> io::Result<Arc<Engine>> {
    let mut engine = Engine::new(arch);
    if cache_bytes > 0 {
        engine = engine.with_cache_bytes(cache_bytes);
    }
    if config.noc {
        engine = engine.with_noc();
    }
    if let Some(staleness) = config.lock_staleness {
        engine = engine.with_lock_staleness(staleness);
    }
    engine = engine.with_cache_format(config.cache_format);
    if let Some(dir) = &config.cache_dir {
        engine = engine.with_cache_dir(dir)?;
    }
    Ok(Arc::new(engine))
}

/// Accumulate one engine's counters into a running total.
fn add_cache_stats(total: &mut CacheStats, s: CacheStats) {
    total.hits += s.hits;
    total.misses += s.misses;
    total.evictions += s.evictions;
    total.entries += s.entries;
    total.bytes += s.bytes;
    total.noc_sims += s.noc_sims;
    total.warm_entries += s.warm_entries;
    total.load_micros += s.load_micros;
    total.store_errors += s.store_errors;
    total.dedup_waits += s.dedup_waits;
    // A peak is a high-water mark, not a flow: summing engines' peaks
    // would overstate concurrency that never coincided.
    total.in_flight_peak = total.in_flight_peak.max(s.in_flight_peak);
    // Every engine observes the same shared cache directory, so disk-tier
    // sizes and counts merge by max (summing would multiply one directory
    // by the engine count); the per-engine compaction tallies are flows
    // and sum. Formats agree unless a probe mixed tiers explicitly.
    total.disk_index_entries = total.disk_index_entries.max(s.disk_index_entries);
    total.disk_legacy_files = total.disk_legacy_files.max(s.disk_legacy_files);
    total.segment_bytes = total.segment_bytes.max(s.segment_bytes);
    total.segment_live_bytes = total.segment_live_bytes.max(s.segment_live_bytes);
    total.segment_dead_bytes = total.segment_dead_bytes.max(s.segment_dead_bytes);
    total.compactions += s.compactions;
    if !s.disk_format.is_empty() {
        if total.disk_format.is_empty() {
            total.disk_format = s.disk_format;
        } else if total.disk_format != s.disk_format {
            total.disk_format = "mixed".to_string();
        }
    }
    // Per-backend win tallies merge by name, keeping the sorted order.
    for win in s.backend_wins {
        match total
            .backend_wins
            .iter_mut()
            .find(|t| t.backend == win.backend)
        {
            Some(t) => {
                t.wins += win.wins;
                t.win_micros += win.win_micros;
            }
            None => total.backend_wins.push(win),
        }
    }
    total.backend_wins.sort_by(|a, b| a.backend.cmp(&b.backend));
}

/// The daemon. [`Server::start`] warm-starts the default engine, runs the
/// startup GC sweep, binds the listener and spawns the acceptor + worker
/// pool, returning a [`ServerHandle`].
pub struct Server;

impl Server {
    /// Start a daemon for `config`.
    ///
    /// # Errors
    ///
    /// Returns the I/O error when the cache dir cannot be opened or the
    /// address cannot be bound.
    pub fn start(config: ServeConfig) -> io::Result<ServerHandle> {
        // Warm start before binding: a connectable daemon is a ready one.
        let default_engine = build_engine(&config, config.default_arch.clone(), 0)?;
        let listener = TcpListener::bind(&config.addr)?;
        let addr = listener.local_addr()?;

        let mut engines = HashMap::new();
        engines.insert(arch_digest(default_engine.arch()), default_engine.clone());
        let state = Arc::new(ServerState {
            addr,
            engines: Mutex::new(engines),
            default_engine,
            queue: Mutex::new(VecDeque::new()),
            queue_ready: Condvar::new(),
            shutdown: AtomicBool::new(false),
            counters: Counters::default(),
            latency: Mutex::new(LatencyRecorder::new()),
            overflow_stats: Mutex::new(CacheStats::default()),
            config,
        });
        state.run_gc("startup");

        let mut workers = Vec::with_capacity(state.config.workers.max(1));
        for i in 0..state.config.workers.max(1) {
            let state = state.clone();
            workers.push(
                std::thread::Builder::new()
                    .name(format!("cosa-serve-worker-{i}"))
                    .spawn(move || worker_loop(&state))?,
            );
        }
        let acceptor = {
            let state = state.clone();
            std::thread::Builder::new()
                .name("cosa-serve-acceptor".to_string())
                .spawn(move || acceptor_loop(&listener, &state))?
        };

        if state.config.log_requests {
            println!(
                "[serve] listening on {addr} — {} workers, queue {} — {} warm entries{}",
                state.config.workers,
                state.config.queue_capacity,
                state.default_engine.cache_stats().warm_entries,
                state
                    .config
                    .cache_dir
                    .as_ref()
                    .map(|d| format!(", cache dir {}", d.display()))
                    .unwrap_or_default(),
            );
        }
        Ok(ServerHandle {
            state,
            acceptor,
            workers,
        })
    }
}

/// A running daemon: its bound address plus shutdown/join control.
pub struct ServerHandle {
    state: Arc<ServerState>,
    acceptor: std::thread::JoinHandle<()>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Signal shutdown without waiting: stop accepting, let workers drain
    /// the queue. Idempotent.
    pub fn begin_shutdown(&self) {
        self.state.begin_shutdown();
    }

    /// Block until the daemon exits (a `POST /shutdown` or a prior
    /// [`ServerHandle::begin_shutdown`]). In-flight and queued requests
    /// finish first.
    ///
    /// # Errors
    ///
    /// Returns an error when a daemon thread panicked.
    pub fn join(self) -> io::Result<()> {
        let panicked = |_| io::Error::other("daemon thread panicked");
        self.acceptor.join().map_err(panicked)?;
        for worker in self.workers {
            worker.join().map_err(panicked)?;
        }
        Ok(())
    }

    /// Graceful shutdown: [`ServerHandle::begin_shutdown`] then
    /// [`ServerHandle::join`].
    ///
    /// # Errors
    ///
    /// Returns an error when a daemon thread panicked.
    pub fn shutdown(self) -> io::Result<()> {
        self.begin_shutdown();
        self.join()
    }
}

/// Answer a connection whose request we never read (shed or shutdown),
/// then close it politely: half-close our side and drain whatever the
/// peer already sent. Dropping a socket with unread bytes pending makes
/// the kernel send RST, which clobbers the response before the client can
/// read it — the drain turns the close into an orderly FIN.
fn reject_connection(mut conn: TcpStream, status: u16, message: &str) {
    let body = error_body(message);
    let _ = write_response(&mut conn, status, &body);
    let _ = conn.shutdown(std::net::Shutdown::Write);
    // Bounded politeness: drain at most 64 KiB for at most 2 seconds. A
    // well-behaved peer's request is long gone by then; a byte-trickling
    // one gets its reset after the deadline instead of pinning a thread.
    let _ = conn.set_read_timeout(Some(Duration::from_millis(500)));
    let deadline = Instant::now() + Duration::from_secs(2);
    let mut sink = [0u8; 4096];
    let mut drained = 0usize;
    while drained < 64 * 1024 && Instant::now() < deadline {
        match conn.read(&mut sink) {
            Ok(n) if n > 0 => drained += n,
            _ => break,
        }
    }
}

/// Cap on concurrent 429-rejector threads. Beyond it, shed connections
/// are dropped outright (the peer sees a reset): under a flood that is
/// the honest signal, and it keeps overload from converting into
/// unbounded thread spawn.
const MAX_REJECTOR_THREADS: usize = 32;

fn acceptor_loop(listener: &TcpListener, state: &ServerState) {
    let rejectors = Arc::new(AtomicUsize::new(0));
    for stream in listener.incoming() {
        if state.shutdown.load(Ordering::SeqCst) {
            if let Ok(conn) = stream {
                reject_connection(conn, 503, "daemon is shutting down");
            }
            break;
        }
        let Ok(conn) = stream else { continue };
        let mut queue = state.queue.lock().expect("queue lock");
        // Re-check under the queue lock: begin_shutdown may have landed
        // since the loop-top check, and workers that already observed
        // shutdown + empty queue have exited — a connection pushed now
        // would never be served.
        if state.shutdown.load(Ordering::SeqCst) {
            drop(queue);
            reject_connection(conn, 503, "daemon is shutting down");
            break;
        }
        if queue.len() >= state.config.queue_capacity {
            drop(queue);
            state.counters.rejected.fetch_add(1, Ordering::Relaxed);
            if state.config.log_requests {
                println!("[serve] 429 queue full");
            }
            // Off-thread: the drain can wait on a slow peer for up to
            // 2s, and the acceptor must keep accepting meanwhile.
            if rejectors.fetch_add(1, Ordering::Relaxed) < MAX_REJECTOR_THREADS {
                let rejectors = rejectors.clone();
                std::thread::spawn(move || {
                    reject_connection(conn, 429, "request queue full, retry later");
                    rejectors.fetch_sub(1, Ordering::Relaxed);
                });
            } else {
                // Over the rejector budget: drop without ceremony.
                rejectors.fetch_sub(1, Ordering::Relaxed);
            }
            continue;
        }
        queue.push_back(conn);
        drop(queue);
        state.queue_ready.notify_one();
    }
}

fn worker_loop(state: &ServerState) {
    loop {
        let conn = {
            let mut queue = state.queue.lock().expect("queue lock");
            loop {
                if let Some(conn) = queue.pop_front() {
                    break Some(conn);
                }
                if state.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (q, _) = state
                    .queue_ready
                    .wait_timeout(queue, Duration::from_millis(100))
                    .expect("queue lock");
                queue = q;
            }
        };
        match conn {
            Some(mut conn) => {
                // Validation keeps panics out of the normal path, but a
                // worker must survive the abnormal one: without this, a
                // single panicking request permanently shrinks the pool
                // until the daemon accepts connections it never serves.
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    handle_connection(state, &mut conn)
                }));
                if outcome.is_err() {
                    state.counters.errors.fetch_add(1, Ordering::Relaxed);
                    let body = error_body("internal error handling request");
                    let _ = write_response(&mut conn, 500, &body);
                    eprintln!("[serve] worker caught a request panic (500 returned)");
                }
            }
            // Shutdown observed with an empty queue: every accepted
            // connection has been drained.
            None => return,
        }
    }
}

fn error_body(message: &str) -> String {
    serde_json::to_string(&ScheduleResponse::from_error(message)).expect("error serializes")
}

fn handle_connection(state: &ServerState, conn: &mut TcpStream) {
    let request = match read_request(conn) {
        Ok(request) => request,
        Err(e) => {
            state.counters.errors.fetch_add(1, Ordering::Relaxed);
            // The request may be partially unread; close politely (see
            // `reject_connection`) so the peer reads the 400, not a reset.
            if let Ok(conn) = conn.try_clone() {
                reject_connection(conn, 400, &format!("bad request: {e}"));
            }
            return;
        }
    };
    let started = Instant::now();
    if let Some(delay) = state.config.request_delay {
        std::thread::sleep(delay);
    }
    let (status, body, shutdown_after) = route(state, &request);
    let _ = write_response(conn, status, &body);
    let micros = started.elapsed().as_micros() as u64;

    if request.path == "/schedule" {
        state.latency.lock().expect("latency lock").record(micros);
        if status == 200 {
            state.after_schedule_request();
        }
    }
    if status != 200 {
        state.counters.errors.fetch_add(1, Ordering::Relaxed);
    }
    if state.config.log_requests {
        println!(
            "[serve] {} {} {status} {micros}µs",
            request.method, request.path
        );
    }
    if shutdown_after {
        state.begin_shutdown();
    }
}

/// Dispatch one parsed request, returning `(status, body, shutdown?)`.
fn route(state: &ServerState, request: &Request) -> (u16, String, bool) {
    match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/schedule") => {
            let (status, body) = handle_schedule(state, &request.body);
            (status, body, false)
        }
        ("GET", "/stats") => (200, handle_stats(state), false),
        ("GET", "/healthz") => (200, handle_healthz(state), false),
        ("POST", "/shutdown") => {
            let body = serde_json::to_string(&ScheduleResponse::from_error(
                "shutting down: draining in-flight requests",
            ))
            .expect("serializes");
            (200, body, true)
        }
        ("POST" | "GET", _) => (
            404,
            error_body(&format!("no route {}", request.path)),
            false,
        ),
        (method, _) => (
            405,
            error_body(&format!("method {method} not allowed")),
            false,
        ),
    }
}

fn handle_schedule(state: &ServerState, body: &str) -> (u16, String) {
    let request: ScheduleRequest = match serde_json::from_str(body) {
        Ok(r) => r,
        Err(e) => return (400, error_body(&format!("malformed request JSON: {e}"))),
    };
    if let Err(msg) = request.work_item() {
        return (400, error_body(&msg));
    }
    // Derived deserialization accepts structurally valid but semantically
    // broken architectures (no levels, NoC level out of range, ...);
    // validate before any solver code can trip over one.
    if let Some(arch) = &request.arch {
        if let Err(e) = arch.validate() {
            return (400, error_body(&format!("invalid architecture: {e}")));
        }
    }
    // Resolve the work item before touching an engine: a bad suite name
    // must not cost a lazy engine build.
    let network = match (&request.network, &request.suite) {
        (Some(network), _) => Some(network.clone()),
        (None, Some(name)) => match name.parse::<Suite>() {
            Ok(suite) => Some(Network::from_suite(suite)),
            Err(e) => return (400, error_body(&e.to_string())),
        },
        (None, None) => None, // work_item() guarantees `layer` is set.
    };

    let (engine, retained) = match state.engine_for(request.arch.clone()) {
        Ok(engine) => engine,
        Err(e) => return (500, error_body(&format!("engine unavailable: {e}"))),
    };
    let scheduler_name = request.scheduler.as_deref().unwrap_or("cosa");
    let scheduler = match scheduler_from_name(scheduler_name, engine.arch()) {
        Ok(s) => s,
        Err(msg) => return (400, error_body(&msg)),
    };

    let outcome = match (&request.layer, network) {
        (Some(layer), _) => engine
            .schedule_layer(scheduler.as_ref(), layer)
            .map(ScheduleResponse::from_scheduled)
            .map_err(|e| e.to_string()),
        (None, Some(network)) => {
            let run = engine.schedule_network(&network, scheduler.as_ref());
            Ok(ScheduleResponse::from_report(run.report))
        }
        (None, None) => unreachable!("work_item() guarantees one item"),
    };
    // A non-retained engine is dropped here; bank its counters so /stats
    // still accounts for the solver work it did.
    if !retained {
        state.fold_overflow_stats(&engine);
    }
    match outcome {
        Ok(response) => (
            200,
            serde_json::to_string(&response).expect("response serializes"),
        ),
        Err(message) => (422, error_body(&message)),
    }
}

fn handle_stats(state: &ServerState) -> String {
    // One lock per statement: a guard created inside the struct literal
    // would live to the end of the whole statement, overlapping the other
    // locks (summed_cache_stats re-locks `engines`, which self-deadlocks a
    // non-reentrant mutex, and a live `queue` guard wedges every worker).
    let queue_depth = state.queue.lock().expect("queue lock").len();
    let engines = state.engines.lock().expect("engines lock").len();
    let cache = state.summed_cache_stats();
    let (p50_micros, p99_micros, max_micros) = {
        let latency = state.latency.lock().expect("latency lock");
        (
            latency.percentile(0.50),
            latency.percentile(0.99),
            latency.max(),
        )
    };
    let stats = StatsResponse {
        served: state.counters.served.load(Ordering::Relaxed),
        errors: state.counters.errors.load(Ordering::Relaxed),
        rejected: state.counters.rejected.load(Ordering::Relaxed),
        queue_depth,
        queue_capacity: state.config.queue_capacity,
        workers: state.config.workers,
        engines,
        p50_micros,
        p99_micros,
        max_micros,
        gc_runs: state.counters.gc_runs.load(Ordering::Relaxed),
        gc_removed: state.counters.gc_removed.load(Ordering::Relaxed),
        cache,
    };
    serde_json::to_string(&stats).expect("stats serialize")
}

fn handle_healthz(state: &ServerState) -> String {
    let health = HealthResponse {
        status: "ok".to_string(),
        warm_entries: state.default_engine.cache_stats().warm_entries,
        cache_dir: state
            .config
            .cache_dir
            .as_ref()
            .map(|d| d.display().to_string()),
        noc: state.config.noc,
    };
    serde_json::to_string(&health).expect("health serializes")
}
