//! The readiness-driven serving front: one epoll event loop owning every
//! connection, a fixed worker pool owning every *complete* request.
//!
//! ```text
//!            event-loop thread (epoll)              worker pool (N threads)
//!  accept ──► nonblocking read ──► RequestParser ──► bounded dispatch queue
//!                  │  (per-conn state machine)             │ pop
//!                  │ queue full? 429 from the loop         ▼
//!                  ◄── completion queue + eventfd ◄── Handler::handle
//!                  │
//!                  └──► nonblocking write ──► close (Connection: close)
//! ```
//!
//! The old front dedicated a worker thread to a connection from `accept`
//! to `close`, so connection count was bounded by worker count and one
//! byte-trickling client pinned a worker for its whole request. Here a
//! connection costs a registered fd plus a parse buffer until its request
//! is **complete**; only then does it enter the bounded dispatch queue and
//! occupy a worker. Consequences the tests pin down:
//!
//! * a slowloris-style client (byte-at-a-time request) never occupies a
//!   worker — concurrent well-behaved requests are served meanwhile;
//! * idle connections scale far beyond the worker count;
//! * overload sheds crisply: a complete request arriving at a full queue
//!   is answered `429` by the event loop itself, without a worker;
//! * graceful drain carries over: on shutdown the loop stops dispatching,
//!   answers new arrivals `503`, flushes every in-flight response, then
//!   exits.
//!
//! The front is protocol-generic over [`Handler`]: the `cosa-serve`
//! daemon plugs in its engine-backed handler, the `cosa-router` its
//! shard-forwarding one — both inherit the queue, shedding, drain,
//! latency-ring and counter machinery unchanged.

use std::collections::HashMap;
use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use cosa_repro::serve::{LatencyRecorder, ScheduleResponse};

use crate::http::{response_bytes, Request, RequestParser};
use crate::poll::{Event, Interest, Poller, Waker};

/// How long a connection may take to deliver one complete request head +
/// body, measured from `accept`. Trickling slower than this earns a `408`;
/// a connection that never sends anything is closed at the same deadline.
/// Dispatched requests (a worker is computing) have **no** deadline — a
/// cold MILP solve legitimately takes tens of seconds.
pub const REQUEST_DEADLINE: Duration = Duration::from_secs(10);

/// How long a response write may stall on a non-draining socket.
pub const WRITE_DEADLINE: Duration = Duration::from_secs(10);

/// What one request routes to: status, JSON body, and whether this
/// response triggers graceful shutdown after it is sent.
#[derive(Debug, Clone)]
pub struct Routed {
    /// HTTP status code.
    pub status: u16,
    /// JSON response body.
    pub body: String,
    /// Answered via a deprecated (unversioned) alias path: the response
    /// carries a `Deprecation: true` header.
    pub deprecated: bool,
    /// Begin graceful shutdown once this response is written.
    pub shutdown: bool,
}

impl Routed {
    /// A plain response.
    pub fn new(status: u16, body: String) -> Routed {
        Routed {
            status,
            body,
            deprecated: false,
            shutdown: false,
        }
    }
}

/// A live view of the front's own counters, handed to [`Handler::handle`]
/// so a `/stats`-style route can report queue depth, shed count and
/// latency percentiles without the handler owning that machinery.
pub struct FrontView<'a> {
    shared: &'a Shared,
}

impl FrontView<'_> {
    /// Requests currently parsed and waiting for a worker.
    pub fn queue_depth(&self) -> usize {
        self.shared.queue.lock().expect("queue lock").len()
    }

    /// Bound on [`FrontView::queue_depth`] beyond which requests shed 429.
    pub fn queue_capacity(&self) -> usize {
        self.shared.queue_capacity
    }

    /// Worker threads handling requests.
    pub fn workers(&self) -> usize {
        self.shared.workers
    }

    /// Schedule requests answered 200.
    pub fn served(&self) -> u64 {
        self.shared.served.load(Ordering::Relaxed)
    }

    /// Requests answered 4xx/5xx (excluding queue rejections).
    pub fn errors(&self) -> u64 {
        self.shared.errors.load(Ordering::Relaxed)
    }

    /// Requests shed 429 by the bounded queue.
    pub fn rejected(&self) -> u64 {
        self.shared.rejected.load(Ordering::Relaxed)
    }

    /// `(p50, p99, max)` service latency over the recent window, in µs.
    pub fn latency_micros(&self) -> (u64, u64, u64) {
        let latency = self.shared.latency.lock().expect("latency lock");
        (
            latency.percentile(0.50),
            latency.percentile(0.99),
            latency.max(),
        )
    }
}

/// One request router: the pluggable application half of the front. The
/// engine-backed daemon and the shard router both implement this.
pub trait Handler: Send + Sync + 'static {
    /// Answer one complete, parsed request. Runs on a worker thread;
    /// blocking here (a solve, a shard forward) is the design.
    fn handle(&self, request: &Request, front: FrontView<'_>) -> Routed;
}

/// Front configuration — the transport-level subset of the daemon config.
#[derive(Debug, Clone)]
pub struct FrontConfig {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Worker threads handling complete requests.
    pub workers: usize,
    /// Bound on parsed requests awaiting a worker; beyond it the event
    /// loop answers `429` itself.
    pub queue_capacity: usize,
    /// Bound on simultaneously open connections; beyond it new accepts
    /// are dropped outright (the honest signal under a connection flood).
    pub max_connections: usize,
    /// Artificial per-request service delay (load-test instrumentation).
    pub request_delay: Option<Duration>,
    /// Log one line per request to stdout.
    pub log_requests: bool,
}

/// A parsed request waiting for (or being served by) a worker.
struct Dispatched {
    token: u64,
    request: Request,
    received: Instant,
}

/// A worker's finished response, travelling back to the event loop.
struct Completion {
    token: u64,
    bytes: Vec<u8>,
    shutdown: bool,
}

/// Everything the event loop, the workers and [`FrontView`] share.
struct Shared {
    workers: usize,
    queue_capacity: usize,
    request_delay: Option<Duration>,
    log_requests: bool,
    queue: Mutex<std::collections::VecDeque<Dispatched>>,
    queue_ready: Condvar,
    completions: Mutex<Vec<Completion>>,
    waker: Waker,
    shutdown: AtomicBool,
    served: AtomicU64,
    errors: AtomicU64,
    rejected: AtomicU64,
    latency: Mutex<LatencyRecorder>,
}

impl Shared {
    fn begin_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return; // Already shutting down.
        }
        self.queue_ready.notify_all();
        self.waker.wake();
    }
}

/// A running front: bound address plus shutdown/join control.
pub struct FrontHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    event_thread: std::thread::JoinHandle<()>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl FrontHandle {
    /// The bound address (resolves `:0` to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signal graceful shutdown without waiting. Idempotent.
    pub fn begin_shutdown(&self) {
        self.shared.begin_shutdown();
    }

    /// Block until the front exits (a `/shutdown` request or a prior
    /// [`FrontHandle::begin_shutdown`]). In-flight and queued requests
    /// finish first.
    ///
    /// # Errors
    ///
    /// Returns an error when a front thread panicked.
    pub fn join(self) -> io::Result<()> {
        let panicked = |_| io::Error::other("front thread panicked");
        self.event_thread.join().map_err(panicked)?;
        for worker in self.workers {
            worker.join().map_err(panicked)?;
        }
        Ok(())
    }
}

/// Start the front: bind, spawn the event loop and the worker pool.
///
/// # Errors
///
/// Returns the I/O error when the address cannot be bound or the epoll
/// instance cannot be created.
pub fn start(config: FrontConfig, handler: Arc<dyn Handler>) -> io::Result<FrontHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let poller = Poller::new()?;
    poller.add(&listener, TOKEN_LISTENER, Interest::READ)?;
    let waker = Waker::new(&poller, TOKEN_WAKER)?;

    let shared = Arc::new(Shared {
        workers: config.workers.max(1),
        queue_capacity: config.queue_capacity,
        request_delay: config.request_delay,
        log_requests: config.log_requests,
        queue: Mutex::new(std::collections::VecDeque::new()),
        queue_ready: Condvar::new(),
        completions: Mutex::new(Vec::new()),
        waker,
        shutdown: AtomicBool::new(false),
        served: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        rejected: AtomicU64::new(0),
        latency: Mutex::new(LatencyRecorder::new()),
    });

    let mut workers = Vec::with_capacity(shared.workers);
    for i in 0..shared.workers {
        let shared = shared.clone();
        let handler = handler.clone();
        workers.push(
            std::thread::Builder::new()
                .name(format!("cosa-serve-worker-{i}"))
                .spawn(move || worker_loop(&shared, handler.as_ref()))?,
        );
    }
    let event_thread = {
        let shared = shared.clone();
        let max_connections = config.max_connections.max(1);
        std::thread::Builder::new()
            .name("cosa-serve-events".to_string())
            .spawn(move || event_loop(listener, poller, &shared, max_connections))?
    };
    Ok(FrontHandle {
        addr,
        shared,
        event_thread,
        workers,
    })
}

const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const TOKEN_FIRST_CONN: u64 = 2;

/// Per-connection state machine phase.
enum Phase {
    /// Accumulating request bytes through the parser.
    Reading,
    /// A complete request is queued or being handled by a worker.
    Dispatched,
    /// A response is draining into the socket; close when done.
    Writing,
}

struct Conn {
    stream: TcpStream,
    parser: RequestParser,
    phase: Phase,
    write_buf: Vec<u8>,
    written: usize,
    opened: Instant,
    write_started: Instant,
    interest: Interest,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        let now = Instant::now();
        Conn {
            stream,
            parser: RequestParser::new(),
            phase: Phase::Reading,
            write_buf: Vec::new(),
            written: 0,
            opened: now,
            write_started: now,
            interest: Interest::READ,
        }
    }
}

fn error_body(message: &str) -> String {
    serde_json::to_string(&ScheduleResponse::from_error(message)).expect("error serializes")
}

/// The epoll event loop: owns the listener, the waker and every live
/// connection; never blocks on a socket.
fn event_loop(listener: TcpListener, poller: Poller, shared: &Shared, max_connections: usize) {
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token = TOKEN_FIRST_CONN;
    let mut events: Vec<Event> = Vec::new();
    let mut draining = false;

    loop {
        events.clear();
        if poller.wait(&mut events, Some(100)).is_err() {
            // epoll itself failing is unrecoverable; drain and exit.
            shared.begin_shutdown();
        }

        for event in events.drain(..) {
            match event.token {
                TOKEN_LISTENER => {
                    accept_ready(
                        &listener,
                        &poller,
                        shared,
                        &mut conns,
                        &mut next_token,
                        max_connections,
                    );
                }
                TOKEN_WAKER => shared.waker.drain(),
                token => {
                    let Some(conn) = conns.get_mut(&token) else {
                        continue; // Closed while the event was in flight.
                    };
                    if event.error {
                        close_conn(&poller, &mut conns, token);
                        continue;
                    }
                    if event.readable && matches!(conn.phase, Phase::Reading) {
                        drive_read(&poller, shared, &mut conns, token);
                    } else if event.writable && matches!(conn.phase, Phase::Writing) {
                        drive_write(&poller, &mut conns, token);
                    }
                }
            }
        }

        // Completions can arrive with or without a waker event (the waker
        // coalesces); drain unconditionally.
        let completions: Vec<Completion> = shared
            .completions
            .lock()
            .expect("completions lock")
            .drain(..)
            .collect();
        for completion in completions {
            if completion.shutdown {
                shared.begin_shutdown();
            }
            if conns.contains_key(&completion.token) {
                start_write(&poller, &mut conns, completion.token, completion.bytes);
            }
        }

        let now = Instant::now();
        sweep_deadlines(&poller, shared, &mut conns, now);

        if shared.shutdown.load(Ordering::SeqCst) {
            if !draining {
                draining = true;
                // Connections still mid-request at shutdown are answered
                // 503 (they could never be dispatched); everything already
                // dispatched or writing drains normally.
                let reading: Vec<u64> = conns
                    .iter()
                    .filter(|(_, c)| matches!(c.phase, Phase::Reading))
                    .map(|(t, _)| *t)
                    .collect();
                for token in reading {
                    respond(
                        &poller,
                        &mut conns,
                        token,
                        503,
                        "daemon is shutting down",
                        false,
                    );
                }
            }
            // Drained: every response written, nothing queued, no worker
            // mid-request (Dispatched conns cover both).
            let busy = conns.values().any(|c| !matches!(c.phase, Phase::Reading));
            if !busy {
                // Late Reading stragglers (accepted during this tick) get
                // the same 503 on the next iteration; exit once quiet.
                if conns.is_empty() {
                    break;
                }
            }
        }
    }
    // Exiting drops the listener: subsequent connects are refused.
    shared.queue_ready.notify_all();
}

/// Accept every pending connection (level-triggered, so loop to EAGAIN).
fn accept_ready(
    listener: &TcpListener,
    poller: &Poller,
    shared: &Shared,
    conns: &mut HashMap<u64, Conn>,
    next_token: &mut u64,
    max_connections: usize,
) {
    loop {
        let (stream, _) = match listener.accept() {
            Ok(accepted) => accepted,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => return, // Transient (ECONNABORTED etc.): retry on the next event.
        };
        if conns.len() >= max_connections {
            // Over the connection budget: drop outright. Under a flood
            // that is the honest signal, and it bounds loop memory.
            drop(stream);
            continue;
        }
        if stream.set_nonblocking(true).is_err() {
            continue;
        }
        let token = *next_token;
        *next_token += 1;
        if poller.add(&stream, token, Interest::READ).is_err() {
            continue;
        }
        let conn = Conn::new(stream);
        conns.insert(token, conn);
        if shared.shutdown.load(Ordering::SeqCst) {
            // Accepted during drain: answer 503 instead of serving.
            respond(poller, conns, token, 503, "daemon is shutting down", false);
        }
    }
}

/// Read until `WouldBlock`, feeding the parser; dispatch on completion.
fn drive_read(poller: &Poller, shared: &Shared, conns: &mut HashMap<u64, Conn>, token: u64) {
    let mut chunk = [0u8; 8192];
    loop {
        let conn = conns.get_mut(&token).expect("conn exists");
        match conn.stream.read(&mut chunk) {
            Ok(0) => {
                // EOF before a complete request: nothing to answer.
                close_conn(poller, conns, token);
                return;
            }
            Ok(n) => match conn.parser.feed(&chunk[..n]) {
                Ok(Some(request)) => {
                    dispatch(poller, shared, conns, token, request);
                    return;
                }
                Ok(None) => continue,
                Err(e) => {
                    shared.errors.fetch_add(1, Ordering::Relaxed);
                    if shared.log_requests {
                        println!("[serve] 400 bad request: {e}");
                    }
                    respond(
                        poller,
                        conns,
                        token,
                        400,
                        &format!("bad request: {e}"),
                        false,
                    );
                    return;
                }
            },
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                close_conn(poller, conns, token);
                return;
            }
        }
    }
}

/// Hand a complete request to the worker pool — or shed it right here.
fn dispatch(
    poller: &Poller,
    shared: &Shared,
    conns: &mut HashMap<u64, Conn>,
    token: u64,
    request: Request,
) {
    if shared.shutdown.load(Ordering::SeqCst) {
        respond(poller, conns, token, 503, "daemon is shutting down", false);
        return;
    }
    let mut queue = shared.queue.lock().expect("queue lock");
    if queue.len() >= shared.queue_capacity {
        drop(queue);
        shared.rejected.fetch_add(1, Ordering::Relaxed);
        if shared.log_requests {
            println!("[serve] 429 queue full");
        }
        respond(
            poller,
            conns,
            token,
            429,
            "request queue full, retry later",
            false,
        );
        return;
    }
    queue.push_back(Dispatched {
        token,
        request,
        received: Instant::now(),
    });
    drop(queue);
    shared.queue_ready.notify_one();
    let conn = conns.get_mut(&token).expect("conn exists");
    conn.phase = Phase::Dispatched;
    // Stop watching for reads (one request per connection); stay
    // registered so errors/hangups are still delivered.
    if poller.modify(&conn.stream, token, Interest::NONE).is_ok() {
        conn.interest = Interest::NONE;
    }
}

/// Queue an error-shaped response on a connection (event-loop-side paths:
/// 400/429/503, deadline 408s).
fn respond(
    poller: &Poller,
    conns: &mut HashMap<u64, Conn>,
    token: u64,
    status: u16,
    message: &str,
    deprecated: bool,
) {
    let headers: &[(&str, &str)] = if deprecated {
        &[("Deprecation", "true")]
    } else {
        &[]
    };
    let bytes = response_bytes(status, &error_body(message), headers);
    start_write(poller, conns, token, bytes);
}

/// Begin draining `bytes` into the connection; fast path writes inline.
fn start_write(poller: &Poller, conns: &mut HashMap<u64, Conn>, token: u64, bytes: Vec<u8>) {
    let conn = conns.get_mut(&token).expect("conn exists");
    conn.phase = Phase::Writing;
    conn.write_buf = bytes;
    conn.written = 0;
    conn.write_started = Instant::now();
    drive_write(poller, conns, token);
}

/// Write until done or `WouldBlock`; close on completion (one-request
/// protocol), register write interest on a full socket buffer.
fn drive_write(poller: &Poller, conns: &mut HashMap<u64, Conn>, token: u64) {
    loop {
        let conn = conns.get_mut(&token).expect("conn exists");
        if conn.written >= conn.write_buf.len() {
            let _ = conn.stream.flush();
            close_conn(poller, conns, token);
            return;
        }
        match conn.stream.write(&conn.write_buf[conn.written..]) {
            Ok(0) => {
                close_conn(poller, conns, token);
                return;
            }
            Ok(n) => conn.written += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if conn.interest != Interest::WRITE
                    && poller.modify(&conn.stream, token, Interest::WRITE).is_ok()
                {
                    conn.interest = Interest::WRITE;
                }
                return;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                close_conn(poller, conns, token);
                return;
            }
        }
    }
}

fn close_conn(poller: &Poller, conns: &mut HashMap<u64, Conn>, token: u64) {
    if let Some(conn) = conns.remove(&token) {
        poller.delete(&conn.stream);
        // Dropping the stream sends FIN; the request was fully read on
        // every answered path, so the peer sees the response, not a reset.
    }
}

/// Enforce the read/write deadlines (cheap O(conns) sweep per tick).
fn sweep_deadlines(poller: &Poller, shared: &Shared, conns: &mut HashMap<u64, Conn>, now: Instant) {
    let expired: Vec<(u64, bool)> = conns
        .iter()
        .filter_map(|(token, conn)| match conn.phase {
            Phase::Reading if now.duration_since(conn.opened) > REQUEST_DEADLINE => {
                Some((*token, conn.parser.started()))
            }
            Phase::Writing if now.duration_since(conn.write_started) > WRITE_DEADLINE => {
                Some((*token, false))
            }
            _ => None,
        })
        .collect();
    for (token, mid_request) in expired {
        if mid_request {
            // A started-but-stalled request gets an answer; a silent idle
            // connection is just closed.
            shared.errors.fetch_add(1, Ordering::Relaxed);
            respond(poller, conns, token, 408, "request timed out", false);
        } else {
            close_conn(poller, conns, token);
        }
    }
}

/// Paths whose responses feed the latency ring and the `served` counter,
/// versioned or not.
fn is_schedule_path(path: &str) -> bool {
    path == "/v1/schedule" || path == "/schedule"
}

/// Pop complete requests and run the handler until shutdown + drained.
fn worker_loop(shared: &Shared, handler: &dyn Handler) {
    loop {
        let dispatched = {
            let mut queue = shared.queue.lock().expect("queue lock");
            loop {
                if let Some(d) = queue.pop_front() {
                    break Some(d);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                let (q, _) = shared
                    .queue_ready
                    .wait_timeout(queue, Duration::from_millis(100))
                    .expect("queue lock");
                queue = q;
            }
        };
        let Some(Dispatched {
            token,
            request,
            received,
        }) = dispatched
        else {
            // Shutdown observed with an empty queue: every dispatched
            // request has been handled.
            return;
        };

        if let Some(delay) = shared.request_delay {
            std::thread::sleep(delay);
        }
        // A panicking request must cost a 500, not a pool thread.
        let view = FrontView { shared };
        let routed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            handler.handle(&request, view)
        }))
        .unwrap_or_else(|_| {
            eprintln!("[serve] worker caught a request panic (500 returned)");
            Routed::new(500, error_body("internal error handling request"))
        });

        let micros = received.elapsed().as_micros() as u64;
        if is_schedule_path(&request.path) {
            shared.latency.lock().expect("latency lock").record(micros);
            if routed.status == 200 {
                shared.served.fetch_add(1, Ordering::Relaxed);
            }
        }
        if routed.status != 200 {
            shared.errors.fetch_add(1, Ordering::Relaxed);
        }
        if shared.log_requests {
            println!(
                "[serve] {} {} {} {micros}µs{}",
                request.method,
                request.path,
                routed.status,
                if routed.deprecated {
                    " (deprecated alias)"
                } else {
                    ""
                },
            );
        }
        let headers: &[(&str, &str)] = if routed.deprecated {
            &[("Deprecation", "true")]
        } else {
            &[]
        };
        let bytes = response_bytes(routed.status, &routed.body, headers);
        shared
            .completions
            .lock()
            .expect("completions lock")
            .push(Completion {
                token,
                bytes,
                shutdown: routed.shutdown,
            });
        shared.waker.wake();
    }
}
