//! A deliberately minimal HTTP/1.1 subset over [`std::net`] — just enough
//! for the daemon's JSON endpoints and its load-generator clients, with no
//! vendored dependencies.
//!
//! Supported: request line + headers + `Content-Length` bodies, one
//! request per connection (`Connection: close` semantics on both sides).
//! Not supported (and not needed by the protocol): keep-alive, chunked
//! transfer, multi-line headers, trailers. Both sides bound header and
//! body sizes so a misbehaving peer cannot balloon a worker.
//!
//! The server side parses *incrementally* through [`RequestParser`]: the
//! readiness-driven front feeds it whatever bytes `epoll` says have
//! arrived, and only a **complete** request ever reaches a worker thread —
//! a byte-trickling (slowloris-style) client occupies a parser buffer, not
//! a worker. The blocking [`read_request`] used by tests and simple tools
//! is a thin loop over the same parser, so both paths accept exactly the
//! same requests.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Bound on the request line + headers (a schedule request's headers are
/// a few hundred bytes).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Bound on a request body (an inline ResNet-50 network is ~100 KB of
/// JSON; 16 MB leaves two orders of magnitude of headroom).
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// Per-connection socket read/write timeout for the *blocking* helpers: a
/// stalled peer frees the calling thread instead of wedging it. The
/// readiness-driven front enforces its own per-phase deadlines instead.
pub const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// Client-side response-read timeout. Deliberately much longer than
/// [`IO_TIMEOUT`]: a cold `POST /schedule` answer arrives only after the
/// MILP solve, which can take tens of seconds per unique shape (the warm
/// path answers in microseconds).
pub const CLIENT_READ_TIMEOUT: Duration = Duration::from_secs(600);

/// One parsed request: method, path and (possibly empty) body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// Absolute path, e.g. `/v1/schedule`.
    pub path: String,
    /// The raw body bytes as UTF-8 (JSON for every protocol endpoint).
    pub body: String,
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Parsed head fields, held while the body streams in.
#[derive(Debug)]
struct Head {
    method: String,
    path: String,
    content_length: usize,
    /// Offset of the first body byte in the parser's buffer.
    body_start: usize,
}

/// An incremental request parser: feed it bytes as they arrive, get a
/// [`Request`] back once the head and `Content-Length` body are complete.
///
/// The parser enforces [`MAX_HEAD_BYTES`] / [`MAX_BODY_BYTES`] as the
/// bytes stream in, so a hostile peer is cut off at the bound instead of
/// ballooning the buffer. One parser serves one connection for one
/// request (`Connection: close` protocol).
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: Vec<u8>,
    head: Option<Head>,
}

impl RequestParser {
    /// A fresh parser.
    pub fn new() -> RequestParser {
        RequestParser::default()
    }

    /// Total bytes buffered so far (head + partial body).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// `true` once at least one byte has arrived — distinguishes a
    /// stalled mid-request peer from a silent idle connection.
    pub fn started(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Feed freshly-arrived bytes. Returns `Ok(Some(request))` when the
    /// request is complete, `Ok(None)` when more bytes are needed.
    ///
    /// # Errors
    ///
    /// Returns `InvalidData` for malformed or oversized requests; the
    /// connection should answer 400 and close.
    pub fn feed(&mut self, bytes: &[u8]) -> io::Result<Option<Request>> {
        self.buf.extend_from_slice(bytes);
        self.advance()
    }

    /// Try to complete a request from the bytes buffered so far.
    fn advance(&mut self) -> io::Result<Option<Request>> {
        if self.head.is_none() {
            let Some(head_end) = find_head_end(&self.buf) else {
                if self.buf.len() > MAX_HEAD_BYTES {
                    return Err(invalid("request head exceeds 16 KiB"));
                }
                return Ok(None);
            };
            let head = std::str::from_utf8(&self.buf[..head_end])
                .map_err(|_| invalid("head is not UTF-8"))?;
            let mut lines = head.split("\r\n");
            let request_line = lines.next().unwrap_or_default();
            let mut parts = request_line.split_whitespace();
            let (method, path) = match (parts.next(), parts.next()) {
                (Some(m), Some(p)) if !m.is_empty() && p.starts_with('/') => (m, p),
                _ => return Err(invalid(format!("bad request line `{request_line}`"))),
            };
            let mut content_length = 0usize;
            for line in lines {
                if let Some((name, value)) = line.split_once(':') {
                    if name.trim().eq_ignore_ascii_case("content-length") {
                        content_length = value
                            .trim()
                            .parse()
                            .map_err(|_| invalid("bad Content-Length"))?;
                    }
                }
            }
            if content_length > MAX_BODY_BYTES {
                return Err(invalid("request body exceeds 16 MiB"));
            }
            self.head = Some(Head {
                method: method.to_string(),
                path: path.to_string(),
                content_length,
                body_start: head_end + 4,
            });
        }
        let head = self.head.as_ref().expect("head parsed above");
        if self.buf.len() < head.body_start + head.content_length {
            return Ok(None);
        }
        let head = self.head.take().expect("head parsed above");
        let body = self.buf[head.body_start..head.body_start + head.content_length].to_vec();
        let body = String::from_utf8(body).map_err(|_| invalid("body is not UTF-8"))?;
        // One request per connection: trailing bytes are ignored.
        self.buf.clear();
        Ok(Some(Request {
            method: head.method,
            path: head.path,
            body,
        }))
    }
}

/// Read one request from `stream`, blocking (with [`IO_TIMEOUT`]) until it
/// is complete. A thin loop over [`RequestParser`], so the blocking and
/// readiness-driven paths accept identical requests.
///
/// # Errors
///
/// Returns `InvalidData` for malformed or oversized requests and any
/// underlying socket error (including read-timeout) verbatim.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    let mut parser = RequestParser::new();
    let mut chunk = [0u8; 2048];
    loop {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(invalid(if parser.head.is_none() {
                "connection closed mid-head"
            } else {
                "connection closed mid-body"
            }));
        }
        if let Some(request) = parser.feed(&chunk[..n])? {
            return Ok(request);
        }
    }
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The standard reason phrase for the status codes the daemon uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        502 => "Bad Gateway",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Serialize one complete `application/json` response (head + body) into
/// the byte buffer the readiness-driven front writes out as the socket
/// drains. `extra_headers` carries route-level additions — notably the
/// `Deprecation` header on unversioned alias paths. The connection is
/// single-request, so `Connection: close` is always sent.
pub fn response_bytes(status: u16, body: &str, extra_headers: &[(&str, &str)]) -> Vec<u8> {
    let mut head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n",
        reason(status),
        body.len(),
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    let mut bytes = head.into_bytes();
    bytes.extend_from_slice(body.as_bytes());
    bytes
}

/// Write one `application/json` response and flush (blocking helper for
/// tests and simple tools; the daemon's front writes [`response_bytes`]
/// incrementally instead).
///
/// # Errors
///
/// Returns the underlying socket error.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    stream.write_all(&response_bytes(status, body, &[]))?;
    stream.flush()
}

/// A client-side response: status code, headers and body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response headers as `(lowercased-name, value)` pairs, in wire order.
    pub headers: Vec<(String, String)>,
    /// Response body (JSON for every protocol endpoint).
    pub body: String,
}

impl Response {
    /// `true` for 2xx statuses.
    pub fn is_ok(&self) -> bool {
        (200..300).contains(&self.status)
    }

    /// The first header named `name` (case-insensitive), when present.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// One-shot client request: connect, send, read the full response.
///
/// The protocol is one request per connection, so this is the entire
/// client surface — `serve_probe`, the router's shard forwarding, the
/// integration tests and the example all go through here.
///
/// # Errors
///
/// Returns connect/socket errors and `InvalidData` for malformed
/// responses.
pub fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> io::Result<Response> {
    let mut stream = TcpStream::connect_timeout(&addr, IO_TIMEOUT)?;
    stream.set_read_timeout(Some(CLIENT_READ_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
}

/// Parse a full raw response (head + body) into a [`Response`].
fn parse_response(raw: &[u8]) -> io::Result<Response> {
    let head_end = find_head_end(raw).ok_or_else(|| invalid("response missing head"))?;
    let head =
        std::str::from_utf8(&raw[..head_end]).map_err(|_| invalid("response head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next().unwrap_or_default();
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid(format!("bad status line `{status_line}`")))?;
    let headers = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let body = String::from_utf8(raw[head_end + 4..].to_vec())
        .map_err(|_| invalid("response body is not UTF-8"))?;
    Ok(Response {
        status,
        headers,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn round_trips_one_request() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let req = read_request(&mut conn).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/echo");
            write_response(&mut conn, 200, &req.body).unwrap();
        });
        let resp = request(addr, "POST", "/echo", r#"{"x":1}"#).unwrap();
        assert!(resp.is_ok());
        assert_eq!(resp.body, r#"{"x":1}"#);
        assert_eq!(resp.header("content-type"), Some("application/json"));
        assert_eq!(resp.header("deprecation"), None);
        server.join().unwrap();
    }

    #[test]
    fn rejects_malformed_request_line() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            assert!(read_request(&mut conn).is_err());
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"NOT-HTTP\r\n\r\n").unwrap();
        server.join().unwrap();
    }

    #[test]
    fn parser_completes_byte_at_a_time() {
        let raw = b"POST /v1/schedule HTTP/1.1\r\nContent-Length: 7\r\n\r\n{\"x\":1}";
        let mut parser = RequestParser::new();
        let mut result = None;
        for (i, byte) in raw.iter().enumerate() {
            assert!(result.is_none(), "complete before the last byte at {i}");
            result = parser.feed(std::slice::from_ref(byte)).unwrap();
        }
        let request = result.expect("request completes on the final byte");
        assert_eq!(request.method, "POST");
        assert_eq!(request.path, "/v1/schedule");
        assert_eq!(request.body, r#"{"x":1}"#);
    }

    #[test]
    fn parser_enforces_head_and_body_bounds() {
        // A head that never terminates is cut off at the bound.
        let mut parser = RequestParser::new();
        let flood = vec![b'a'; MAX_HEAD_BYTES + 8];
        assert!(parser.feed(&flood).is_err(), "oversized head rejected");

        // An honest head declaring an oversized body is rejected at the
        // head, before any body byte arrives.
        let mut parser = RequestParser::new();
        let head = format!(
            "POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
            MAX_BODY_BYTES + 1
        );
        assert!(parser.feed(head.as_bytes()).is_err());
    }

    #[test]
    fn response_bytes_carries_extra_headers() {
        let bytes = response_bytes(200, "{}", &[("Deprecation", "true")]);
        let resp = parse_response(&bytes).unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.header("Deprecation"), Some("true"));
        assert_eq!(resp.body, "{}");
    }
}
