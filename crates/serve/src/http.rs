//! A deliberately minimal HTTP/1.1 subset over [`std::net`] — just enough
//! for the daemon's JSON endpoints and its load-generator clients, with no
//! vendored dependencies.
//!
//! Supported: request line + headers + `Content-Length` bodies, one
//! request per connection (`Connection: close` semantics on both sides).
//! Not supported (and not needed by the protocol): keep-alive, chunked
//! transfer, multi-line headers, trailers. Both sides bound header and
//! body sizes so a misbehaving peer cannot balloon a worker.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// Bound on the request line + headers (a schedule request's headers are
/// a few hundred bytes).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Bound on a request body (an inline ResNet-50 network is ~100 KB of
/// JSON; 16 MB leaves two orders of magnitude of headroom).
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// Per-connection socket read/write timeout: a stalled peer frees its
/// worker instead of wedging it.
pub const IO_TIMEOUT: Duration = Duration::from_secs(10);

/// Client-side response-read timeout. Deliberately much longer than
/// [`IO_TIMEOUT`]: a cold `POST /schedule` answer arrives only after the
/// MILP solve, which can take tens of seconds per unique shape (the warm
/// path answers in microseconds).
pub const CLIENT_READ_TIMEOUT: Duration = Duration::from_secs(600);

/// One parsed request: method, path and (possibly empty) body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET`, `POST`, ...
    pub method: String,
    /// Absolute path, e.g. `/schedule`.
    pub path: String,
    /// The raw body bytes as UTF-8 (JSON for every protocol endpoint).
    pub body: String,
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Read one request from `stream`.
///
/// # Errors
///
/// Returns `InvalidData` for malformed or oversized requests and any
/// underlying socket error (including read-timeout) verbatim.
pub fn read_request(stream: &mut TcpStream) -> io::Result<Request> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;

    // Read until the blank line separating head from body, keeping any
    // body bytes that arrived in the same segment.
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 2048];
    let head_end = loop {
        if let Some(pos) = find_head_end(&buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(invalid("request head exceeds 16 KiB"));
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(invalid("connection closed mid-head"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..head_end]).map_err(|_| invalid("head is not UTF-8"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) if !m.is_empty() && p.starts_with('/') => (m, p),
        _ => return Err(invalid(format!("bad request line `{request_line}`"))),
    };

    let mut content_length = 0usize;
    for line in lines {
        if let Some((name, value)) = line.split_once(':') {
            if name.trim().eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| invalid("bad Content-Length"))?;
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(invalid("request body exceeds 16 MiB"));
    }

    let mut body = buf[head_end + 4..].to_vec();
    while body.len() < content_length {
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(invalid("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    let body = String::from_utf8(body).map_err(|_| invalid("body is not UTF-8"))?;

    Ok(Request {
        method: method.to_string(),
        path: path.to_string(),
        body,
    })
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// The standard reason phrase for the status codes the daemon uses.
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

/// Write one `application/json` response and flush. The connection is
/// single-request, so `Connection: close` is always sent.
///
/// # Errors
///
/// Returns the underlying socket error.
pub fn write_response(stream: &mut TcpStream, status: u16, body: &str) -> io::Result<()> {
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let head = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        reason(status),
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// A client-side response: status code plus body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Response body (JSON for every protocol endpoint).
    pub body: String,
}

impl Response {
    /// `true` for 2xx statuses.
    pub fn is_ok(&self) -> bool {
        (200..300).contains(&self.status)
    }
}

/// One-shot client request: connect, send, read the full response.
///
/// The protocol is one request per connection, so this is the entire
/// client surface — `serve_probe`, the integration tests and the example
/// all go through here.
///
/// # Errors
///
/// Returns connect/socket errors and `InvalidData` for malformed
/// responses.
pub fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> io::Result<Response> {
    let mut stream = TcpStream::connect_timeout(&addr, IO_TIMEOUT)?;
    stream.set_read_timeout(Some(CLIENT_READ_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()?;

    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    let head_end = find_head_end(&raw).ok_or_else(|| invalid("response missing head"))?;
    let head =
        std::str::from_utf8(&raw[..head_end]).map_err(|_| invalid("response head is not UTF-8"))?;
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| invalid(format!("bad status line `{head}`")))?;
    let body = String::from_utf8(raw[head_end + 4..].to_vec())
        .map_err(|_| invalid("response body is not UTF-8"))?;
    Ok(Response { status, body })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn round_trips_one_request() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            let req = read_request(&mut conn).unwrap();
            assert_eq!(req.method, "POST");
            assert_eq!(req.path, "/echo");
            write_response(&mut conn, 200, &req.body).unwrap();
        });
        let resp = request(addr, "POST", "/echo", r#"{"x":1}"#).unwrap();
        assert!(resp.is_ok());
        assert_eq!(resp.body, r#"{"x":1}"#);
        server.join().unwrap();
    }

    #[test]
    fn rejects_malformed_request_line() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (mut conn, _) = listener.accept().unwrap();
            assert!(read_request(&mut conn).is_err());
        });
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"NOT-HTTP\r\n\r\n").unwrap();
        server.join().unwrap();
    }
}
