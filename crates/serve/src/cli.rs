//! The `--flag value` CLI convention shared by the daemon and probe
//! binaries (`cosa_serve`, `serve_probe`, `engine_probe`) — one
//! implementation so a parsing change (say, `--flag=value` support)
//! lands everywhere at once.

/// The value following `--flag` in `args`, when present.
pub fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Parse the value following `--flag`, panicking with the flag name on
/// malformed input (the binaries fail fast on bad invocations).
pub fn parse_flag<T: std::str::FromStr>(args: &[String], flag: &str) -> Option<T> {
    flag_value(args, flag).map(|v| {
        v.parse()
            .unwrap_or_else(|_| panic!("bad value `{v}` for {flag}"))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_value_finds_pairs_and_tolerates_absence() {
        let args: Vec<String> = ["bin", "--addr", "1.2.3.4:80", "--noc"]
            .map(String::from)
            .to_vec();
        assert_eq!(flag_value(&args, "--addr").as_deref(), Some("1.2.3.4:80"));
        assert_eq!(flag_value(&args, "--workers"), None);
        assert_eq!(
            flag_value(&args, "--noc"),
            None,
            "trailing flag has no value"
        );
        assert_eq!(parse_flag::<u16>(&args, "--workers"), None);
    }
}
