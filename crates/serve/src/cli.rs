//! CLI → [`ServeConfig`] mapping for the daemon binaries.
//!
//! The `--flag value` helpers and the shared scheduler/cache flag set
//! ([`CommonArgs`]) live in `cosa_repro::serve` — one implementation for
//! `cosa_serve`, `cosa_router`, `serve_probe` and `engine_probe` — and
//! are re-exported here for the existing import paths. What remains in
//! this module is the thin translation from parsed flags onto
//! [`ServeConfig::builder`].

pub use cosa_repro::serve::{flag_value, parse_flag, CommonArgs};

use std::time::Duration;

use cosa_repro::engine::GcPolicy;

use crate::{ServeConfig, ServeConfigBuilder};

/// Map the daemon flag set onto a [`ServeConfig`] builder:
/// `--addr`/`--workers`/`--queue`/`--max-connections`, the [`CommonArgs`]
/// set (`--cache-dir`/`--cache-format`/`--lock-staleness-secs`/`--noc`),
/// `--gc-max-bytes`/`--gc-max-age-secs`/`--gc-every` and
/// `--request-delay-micros`.
pub fn config_from_args(args: &[String], default_addr: &str) -> ServeConfigBuilder {
    let mut builder = ServeConfig::builder()
        .addr(flag_value(args, "--addr").unwrap_or_else(|| default_addr.to_string()))
        .common(&CommonArgs::parse(args));
    if let Some(workers) = parse_flag(args, "--workers") {
        builder = builder.workers(workers);
    }
    if let Some(queue) = parse_flag(args, "--queue") {
        builder = builder.queue_capacity(queue);
    }
    if let Some(max) = parse_flag(args, "--max-connections") {
        builder = builder.max_connections(max);
    }
    let mut gc = GcPolicy::default();
    if let Some(max_bytes) = parse_flag(args, "--gc-max-bytes") {
        gc = gc.with_max_bytes(max_bytes);
    }
    if let Some(secs) = parse_flag::<u64>(args, "--gc-max-age-secs") {
        gc = gc.with_max_age(Duration::from_secs(secs));
    }
    builder = builder.gc(gc);
    if let Some(every) = parse_flag(args, "--gc-every") {
        builder = builder.gc_every(every);
    }
    if let Some(micros) = parse_flag::<u64>(args, "--request-delay-micros") {
        builder = builder.request_delay(Duration::from_micros(micros));
    }
    builder
}

#[cfg(test)]
mod tests {
    use super::*;
    use cosa_repro::engine::StoreFormat;

    #[test]
    fn flag_value_finds_pairs_and_tolerates_absence() {
        let args: Vec<String> = ["bin", "--addr", "1.2.3.4:80", "--noc"]
            .map(String::from)
            .to_vec();
        assert_eq!(flag_value(&args, "--addr").as_deref(), Some("1.2.3.4:80"));
        assert_eq!(flag_value(&args, "--workers"), None);
        assert_eq!(
            flag_value(&args, "--noc"),
            None,
            "trailing flag has no value"
        );
        assert_eq!(parse_flag::<u16>(&args, "--workers"), None);
    }

    #[test]
    fn config_from_args_maps_every_daemon_flag() {
        let args: Vec<String> = [
            "bin",
            "--addr",
            "127.0.0.1:0",
            "--workers",
            "3",
            "--queue",
            "9",
            "--max-connections",
            "111",
            "--cache-format",
            "legacy",
            "--lock-staleness-secs",
            "42",
            "--noc",
            "--gc-every",
            "5",
            "--request-delay-micros",
            "250",
            "--interlayer",
            "--interlayer-budget-bytes",
            "131072",
        ]
        .map(String::from)
        .to_vec();
        let config = config_from_args(&args, "127.0.0.1:7878").build();
        assert_eq!(config.addr, "127.0.0.1:0");
        assert_eq!(config.workers, 3);
        assert_eq!(config.queue_capacity, 9);
        assert_eq!(config.max_connections, 111);
        assert_eq!(config.cache_format, StoreFormat::Legacy);
        assert_eq!(config.lock_staleness, Some(Duration::from_secs(42)));
        assert!(config.noc);
        assert_eq!(config.gc_every, 5);
        assert_eq!(config.request_delay, Some(Duration::from_micros(250)));
        assert_eq!(
            config.interlayer,
            cosa_repro::engine::InterlayerOptions::enabled().with_budget_bytes(131072)
        );

        let defaults = config_from_args(&["bin".to_string()], "127.0.0.1:7878").build();
        assert_eq!(defaults.addr, "127.0.0.1:7878");
        assert!(!defaults.interlayer.enabled);
    }
}
