//! The `cosa-serve` daemon binary: a long-lived scheduling service over
//! the batch `Engine`.
//!
//! Run with: `cargo run --release -p cosa-serve --bin cosa_serve -- \
//!     --addr 127.0.0.1:7878 --cache-dir .cosa-cache --noc`
//!
//! Flags:
//!
//! * `--addr HOST:PORT` — bind address (default `127.0.0.1:7878`; port 0
//!   picks an ephemeral port, printed at startup).
//! * `--workers N` / `--queue N` — worker pool width and bounded-queue
//!   capacity.
//! * `--cache-dir PATH` (or `COSA_CACHE_DIR`) — shared persistent
//!   schedule cache; restarts warm-start from it.
//! * `--cache-format segment|legacy` — disk-tier layout: the packed
//!   `segment.cosa` file (default) or one JSON file per digest.
//! * `--lock-staleness-secs N` — how old a per-digest solve-lock file
//!   must be before it is presumed orphaned and taken over (default
//!   300 s; keep it above the worst-case solve time).
//! * `--noc` — engine-level NoC evaluation per unique shape.
//! * `--gc-max-bytes N` / `--gc-max-age-secs N` — disk-tier GC policy,
//!   run at startup and every `--gc-every N` served requests (default 64).
//! * `--request-delay-micros N` — artificial service delay (load-test
//!   instrumentation only).
//!
//! The daemon logs one line per request to stdout and exits cleanly on
//! `POST /shutdown`, draining queued requests first.

use std::time::Duration;

use cosa_repro::engine::{GcPolicy, StoreFormat};
use cosa_serve::cli::{flag_value, parse_flag};
use cosa_serve::{ServeConfig, Server};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let mut config = ServeConfig {
        addr: flag_value(&args, "--addr").unwrap_or_else(|| "127.0.0.1:7878".to_string()),
        log_requests: true,
        ..ServeConfig::default()
    };
    if let Some(workers) = parse_flag(&args, "--workers") {
        config.workers = workers;
    }
    if let Some(queue) = parse_flag(&args, "--queue") {
        config.queue_capacity = queue;
    }
    config.cache_dir = flag_value(&args, "--cache-dir")
        .or_else(|| std::env::var("COSA_CACHE_DIR").ok())
        .map(Into::into);
    config.lock_staleness =
        parse_flag::<u64>(&args, "--lock-staleness-secs").map(Duration::from_secs);
    if let Some(format) = flag_value(&args, "--cache-format") {
        config.cache_format = StoreFormat::parse(&format)
            .unwrap_or_else(|| panic!("bad value `{format}` for --cache-format"));
    }
    config.noc = args.iter().any(|a| a == "--noc");
    let mut gc = GcPolicy::default();
    if let Some(max_bytes) = parse_flag(&args, "--gc-max-bytes") {
        gc = gc.with_max_bytes(max_bytes);
    }
    if let Some(secs) = parse_flag::<u64>(&args, "--gc-max-age-secs") {
        gc = gc.with_max_age(Duration::from_secs(secs));
    }
    config.gc = gc;
    if let Some(every) = parse_flag(&args, "--gc-every") {
        config.gc_every = every;
    }
    if let Some(micros) = parse_flag::<u64>(&args, "--request-delay-micros") {
        config.request_delay = Some(Duration::from_micros(micros));
    }

    let handle = Server::start(config).expect("start daemon");
    println!(
        "[serve] ready at http://{} — POST /schedule, GET /stats, GET /healthz, POST /shutdown",
        handle.addr()
    );
    handle.join().expect("daemon threads exit cleanly");
    println!("[serve] shut down cleanly");
}
