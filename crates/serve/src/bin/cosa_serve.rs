//! The `cosa-serve` daemon binary: a long-lived scheduling service over
//! the batch `Engine`.
//!
//! Run with: `cargo run --release -p cosa-serve --bin cosa_serve -- \
//!     --addr 127.0.0.1:7878 --cache-dir .cosa-cache --noc`
//!
//! Flags (all parsed by `cosa_serve::cli::config_from_args` onto
//! `ServeConfig::builder`):
//!
//! * `--addr HOST:PORT` — bind address (default `127.0.0.1:7878`; port 0
//!   picks an ephemeral port, printed at startup).
//! * `--workers N` / `--queue N` — worker pool width and bounded-queue
//!   capacity.
//! * `--max-connections N` — bound on simultaneously open connections
//!   (the epoll front keeps idle/parsing connections off the workers).
//! * `--cache-dir PATH` (or `COSA_CACHE_DIR`) — shared persistent
//!   schedule cache; restarts warm-start from it.
//! * `--cache-format segment|legacy` — disk-tier layout: the packed
//!   `segment.cosa` file (default) or one JSON file per digest.
//! * `--lock-staleness-secs N` — how old a per-digest solve-lock file
//!   must be before it is presumed orphaned and taken over (default
//!   300 s; keep it above the worst-case solve time).
//! * `--noc` — engine-level NoC evaluation per unique shape.
//! * `--gc-max-bytes N` / `--gc-max-age-secs N` — disk-tier GC policy,
//!   run at startup and every `--gc-every N` served requests (default 64).
//! * `--request-delay-micros N` — artificial service delay (load-test
//!   instrumentation only).
//!
//! The daemon serves the versioned wire API (`POST /v1/schedule`,
//! `GET /v1/stats`, `GET /v1/healthz`, `POST /v1/shutdown`; unversioned
//! paths remain as deprecated aliases), logs one line per request to
//! stdout and exits cleanly on `POST /v1/shutdown`, draining queued
//! requests first.

use cosa_serve::cli::config_from_args;
use cosa_serve::Server;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let config = config_from_args(&args, "127.0.0.1:7878")
        .log_requests(true)
        .build();
    let handle = Server::start(config).expect("start daemon");
    println!(
        "[serve] ready at http://{} — POST /v1/schedule, GET /v1/stats, GET /v1/healthz, \
         POST /v1/shutdown",
        handle.addr()
    );
    handle.join().expect("daemon threads exit cleanly");
    println!("[serve] shut down cleanly");
}
