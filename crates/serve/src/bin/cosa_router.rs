//! The `cosa-router` binary: a thin sharding tier in front of N
//! `cosa_serve` daemons.
//!
//! Run with: `cargo run --release -p cosa-serve --bin cosa_router -- \
//!     --addr 127.0.0.1:7800 \
//!     --shards 127.0.0.1:7801,127.0.0.1:7802,127.0.0.1:7803`
//!
//! Each `POST /v1/schedule` is forwarded to the shard that owns the
//! request's canonical cache-key digest on a consistent-hash ring, so a
//! digest is solved exactly once fleet-wide; `GET /v1/stats` answers the
//! merged fleet counters; `GET /v1/healthz` is healthy only when every
//! shard is. The router speaks only `/v1`.
//!
//! Flags:
//!
//! * `--addr HOST:PORT` — bind address (default `127.0.0.1:7800`).
//! * `--shards A,B,C` — comma-separated shard addresses (required).
//! * `--workers N` / `--queue N` / `--max-connections N` — forwarding
//!   concurrency, queue bound and connection bound (same semantics as
//!   the daemon: a full queue sheds 429 without occupying a worker).
//! * `--no-cascade-shutdown` — drain only the router on
//!   `POST /v1/shutdown`, leaving the shards running (default is to
//!   forward the shutdown to every shard first).

use cosa_serve::cli::{config_from_args, flag_value};
use cosa_serve::router::{Router, RouterConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let shards: Vec<String> = flag_value(&args, "--shards")
        .map(|list| {
            list.split(',')
                .map(|s| s.trim().to_string())
                .filter(|s| !s.is_empty())
                .collect()
        })
        .unwrap_or_default();
    assert!(
        !shards.is_empty(),
        "--shards A,B,C is required (at least one shard address)"
    );
    let config = RouterConfig {
        serve: config_from_args(&args, "127.0.0.1:7800")
            .log_requests(true)
            .build(),
        shards,
        cascade_shutdown: !args.iter().any(|a| a == "--no-cascade-shutdown"),
    };
    let handle = Router::start(config).expect("start router");
    println!(
        "[router] ready at http://{} — POST /v1/schedule, GET /v1/stats, GET /v1/healthz, \
         POST /v1/shutdown",
        handle.addr()
    );
    handle.join().expect("router threads exit cleanly");
    println!("[router] shut down cleanly");
}
