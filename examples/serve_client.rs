//! Serving quickstart: start an in-process `cosa-serve` daemon with a
//! persistent cache dir, schedule a layer and a network over HTTP, show
//! the cache doing its job via `/v1/stats`, then shut down gracefully.
//!
//! Run with: `cargo run --release --example serve_client`
//!
//! Run it twice: the second process warm-starts from the cache directory
//! and answers the same requests with zero solver calls.

use cosa_repro::prelude::*;
use cosa_serve::{http, ServeConfig, Server};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A daemon on an ephemeral port, persisting schedules next to the
    // other example/bench artifacts. `cosa_serve` is the standalone
    // binary with the same knobs.
    let handle = Server::start(
        ServeConfig::builder()
            .cache_dir(".cosa-serve-example-cache")
            .gc(GcPolicy::default().with_max_bytes(64 * 1024 * 1024))
            .build(),
    )?;
    let addr = handle.addr();
    println!("daemon listening on http://{addr}");

    let health: HealthResponse =
        serde_json::from_str(&http::request(addr, "GET", "/v1/healthz", "")?.body)?;
    println!(
        "healthz: {} ({} warm entries)\n",
        health.status, health.warm_entries
    );

    // One layer through the fast `random` scheduler.
    let layer = Layer::conv("demo", 3, 3, 8, 8, 16, 16, 1, 1, 1);
    let request = ScheduleRequest::for_layer(layer).with_scheduler("random");
    let resp = http::request(
        addr,
        "POST",
        "/v1/schedule",
        &serde_json::to_string(&request)?,
    )?;
    let answer: ScheduleResponse = serde_json::from_str(&resp.body)?;
    let scheduled = answer.scheduled.expect("layer answer");
    println!(
        "layer `{}` via `{}`: {:.0} cycles, {:.1} uJ",
        scheduled.layer,
        scheduled.scheduler,
        scheduled.latency_cycles,
        scheduled.energy_pj / 1e6,
    );

    // A whole network; repeated shapes dedupe through the daemon's cache.
    let mut network = Network::from_suite(Suite::ResNet50);
    network.layers.truncate(8);
    network.name = "ResNet-50 (conv1 + conv2 stage)".to_string();
    let request = ScheduleRequest::for_network(network).with_scheduler("random");
    let resp = http::request(
        addr,
        "POST",
        "/v1/schedule",
        &serde_json::to_string(&request)?,
    )?;
    let answer: ScheduleResponse = serde_json::from_str(&resp.body)?;
    let report = answer.report.expect("network answer");
    println!(
        "network `{}`: {}/{} layers scheduled, {:.3e} cycles total",
        report.network,
        report.scheduled_layers,
        report.layers.len(),
        report.total_latency_cycles,
    );

    let stats: StatsResponse =
        serde_json::from_str(&http::request(addr, "GET", "/v1/stats", "")?.body)?;
    println!(
        "stats: {} served, cache {} hits / {} misses, p99 {}µs, {} gc runs\n",
        stats.served, stats.cache.hits, stats.cache.misses, stats.p99_micros, stats.gc_runs,
    );

    handle.shutdown()?;
    println!("daemon drained and shut down; rerun to see a warm start");
    Ok(())
}
