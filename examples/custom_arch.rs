//! Define a custom spatial accelerator with [`ArchBuilder`] and watch CoSA
//! adapt its schedules — the generality claim of Sec. V-B.4 (Fig. 9).
//!
//! Run with: `cargo run --release --example custom_arch`

use cosa_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let layer = Layer::parse_paper_name("3_14_256_256_1")?;
    println!("layer: {layer}\n");

    let archs = vec![
        Arch::simba_baseline(),
        Arch::simba_8x8(),
        Arch::simba_big_buffers(),
        // A skinny edge accelerator: 2x2 PEs, 16 MACs each, small buffers.
        ArchBuilder::new("edge-2x2")
            .mesh(2, 2)
            .macs_per_pe(16)
            .local_buffer_scale(1)
            .global_buffer_scale(1)
            .build()?,
        // A wide datacenter part: 8x4 PEs with double bandwidth and 4x GB.
        ArchBuilder::new("wide-8x4")
            .mesh(8, 4)
            .bandwidth_scale(2.0)
            .global_buffer_scale(4)
            .build()?,
    ];

    println!(
        "{:14} {:>9} {:>14} {:>10} {:>9}",
        "architecture", "PEs", "latency(cyc)", "PE util", "time"
    );
    for arch in archs {
        let scheduler = CosaScheduler::new(&arch);
        let result = scheduler.schedule(&layer)?;
        let eval = CostModel::new(&arch).evaluate(&layer, &result.schedule)?;
        println!(
            "{:14} {:>9} {:>14.0} {:>9.0}% {:>8.1?}",
            arch.name(),
            arch.num_pes(),
            eval.latency_cycles,
            eval.pe_utilization * 100.0,
            result.solve_time
        );
    }
    println!("\nmore PEs / bigger buffers => lower latency, without re-tuning CoSA");
    Ok(())
}
