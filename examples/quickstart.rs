//! Quickstart: schedule one ResNet-50 layer through the uniform
//! `Scheduler` API, print the loop nest (Listing-1 style) and both
//! platforms' verdicts, then batch-schedule a small network through the
//! `Engine` to show caching.
//!
//! Run with: `cargo run --release --example quickstart`

use cosa_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Simba-like baseline of Table V and a ResNet-50 layer.
    let arch = Arch::simba_baseline();
    let layer = Layer::parse_paper_name("3_7_512_512_1")?;
    println!("architecture: {arch}");
    println!("layer:        {layer}\n");

    // One-shot constrained-optimization scheduling through the uniform
    // trait (the same call works for RandomMapper and HybridMapper).
    let cosa = CosaScheduler::new(&arch);
    let result = Scheduler::schedule(&cosa, &arch, &layer)?;
    println!(
        "CoSA solved the MILP in {:?} ({} branch-and-bound nodes)\n",
        result.elapsed, result.stats.milp_nodes
    );
    println!("{}", result.schedule.render(&arch));

    // Platform 1: the Timeloop-like analytical model (already evaluated).
    println!("analytical model:");
    println!("  latency  {:>12.0} cycles", result.latency_cycles);
    println!("  energy   {:>12.1} uJ", result.energy_pj / 1e6);

    // Platform 2: the cycle-level NoC simulator.
    let report = NocSimulator::new(&arch).simulate(&layer, &result.schedule)?;
    println!("NoC simulator:");
    println!(
        "  latency  {:>12.0} cycles ({} PEs used)",
        report.total_cycles, report.pes_used
    );
    println!(
        "  dram     {:>12.0} cycles of DRAM streaming",
        report.dram_cycles
    );
    println!(
        "  bound by {}\n",
        if report.communication_bound() {
            "communication"
        } else {
            "compute"
        }
    );

    // Batch scheduling: the first residual stage of ResNet-50 repeats
    // shapes, which the engine's schedule cache deduplicates.
    let mut network = Network::from_suite(Suite::ResNet50);
    network.layers.truncate(8);
    network.name = "ResNet-50 (conv1 + conv2 stage)".to_string();
    let engine = Engine::new(arch);
    let run = engine.schedule_network(&network, &cosa);
    println!(
        "engine: {} — {} instances, {} fresh solves, {} cache hits, {:?}",
        run.report.network,
        network.num_instances(),
        run.cache_misses,
        run.cache_hits,
        run.elapsed
    );
    println!(
        "  whole-stage latency {:.3e} cycles, energy {:.3e} pJ",
        run.report.total_latency_cycles, run.report.total_energy_pj
    );

    // Every result serializes to canonical JSON.
    let json = serde_json::to_string(&result)?;
    println!(
        "\nScheduled record is serializable ({} bytes of JSON)",
        json.len()
    );
    Ok(())
}
