//! Quickstart: schedule one ResNet-50 layer on the baseline accelerator
//! with CoSA, print the loop nest (Listing-1 style) and both platforms'
//! verdicts.
//!
//! Run with: `cargo run --release --example quickstart`

use cosa_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The Simba-like baseline of Table V and a ResNet-50 layer.
    let arch = Arch::simba_baseline();
    let layer = Layer::parse_paper_name("3_7_512_512_1")?;
    println!("architecture: {arch}");
    println!("layer:        {layer}\n");

    // One-shot constrained-optimization scheduling.
    let result = CosaScheduler::new(&arch).schedule(&layer)?;
    println!("CoSA solved the MILP in {:?} ({} branch-and-bound nodes)\n",
        result.solve_time, result.stats.nodes);
    println!("{}", result.schedule.render(&arch));

    // Platform 1: the Timeloop-like analytical model.
    let eval = CostModel::new(&arch).evaluate(&layer, &result.schedule)?;
    println!("analytical model:");
    println!("  latency  {:>12.0} cycles", eval.latency_cycles);
    println!("  compute  {:>12} cycles", eval.compute_cycles);
    println!("  energy   {:>12.1} uJ", eval.energy_pj / 1e6);
    println!("  PE util  {:>11.0}%  MAC util {:>3.0}%",
        eval.pe_utilization * 100.0, eval.mac_utilization * 100.0);

    // Platform 2: the cycle-level NoC simulator.
    let report = NocSimulator::new(&arch).simulate(&layer, &result.schedule)?;
    println!("NoC simulator:");
    println!("  latency  {:>12.0} cycles ({} PEs used)", report.total_cycles, report.pes_used);
    println!("  dram     {:>12.0} cycles of DRAM streaming", report.dram_cycles);
    println!(
        "  bound by {}",
        if report.communication_bound() { "communication" } else { "compute" }
    );

    // The objective breakdown of Fig. 8.
    let b = result.breakdown;
    println!("\nobjective (Eq. 12): -{:.1} util + {:.1} comp + {:.1} traf = {:.1}",
        b.weighted_util(), b.weighted_comp(), b.weighted_traf(), b.total());
    Ok(())
}
