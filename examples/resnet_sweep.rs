//! Schedule a slice of ResNet-50 with all three schedulers and print a
//! per-layer comparison table — a miniature of the Fig. 6 experiment.
//!
//! Run with: `cargo run --release --example resnet_sweep`
//! (add `-- --full` for all 23 layers)

use cosa_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let full = std::env::args().any(|a| a == "--full");
    let arch = Arch::simba_baseline();
    let model = CostModel::new(&arch);
    let cosa = CosaScheduler::new(&arch);

    let mut layers = cosa_repro::spec::workloads::resnet50().layers;
    if !full {
        layers.truncate(6);
    }

    println!(
        "{:20} {:>12} {:>12} {:>12} {:>8}",
        "layer", "random", "hybrid", "cosa", "speedup"
    );
    let mut speedups = Vec::new();
    for layer in &layers {
        let rnd = RandomMapper::new(7).search(&arch, &layer, &SearchLimits::paper());
        let hyb = HybridMapper::new(HybridConfig::quick()).search(&arch, &layer);
        let res = cosa.schedule(layer)?;
        let lat = model.evaluate(layer, &res.schedule)?.latency_cycles;
        let speedup = rnd.best_latency / lat;
        speedups.push(speedup);
        println!(
            "{:20} {:>12.0} {:>12.0} {:>12.0} {:>7.2}x",
            layer.name(),
            rnd.best_latency,
            hyb.best_latency,
            lat,
            speedup
        );
    }
    let geo = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
    println!("\ngeomean speedup vs random search: {geo:.2}x");
    Ok(())
}
