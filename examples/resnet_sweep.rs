//! Schedule a slice of ResNet-50 with all three schedulers — as uniform
//! `Scheduler` trait objects driven by the batch `Engine` — and print a
//! per-layer comparison table, a miniature of the Fig. 6 experiment.
//!
//! Run with: `cargo run --release --example resnet_sweep`
//! (add `-- --full` for all 23 unique layers)

use cosa_repro::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let full = std::env::args().any(|a| a == "--full");
    let arch = Arch::simba_baseline();

    let mut workload = cosa_repro::spec::workloads::resnet50();
    if !full {
        workload.layers.truncate(6);
    }
    let network = Network::from_workload(&workload);

    let schedulers: Vec<Box<dyn Scheduler>> = vec![
        Box::new(RandomMapper::new(7).with_limits(SearchLimits::paper())),
        Box::new(HybridMapper::new(HybridConfig::quick())),
        Box::new(CosaScheduler::new(&arch)),
    ];

    let engine = Engine::new(arch);
    let reports: Vec<NetworkReport> = schedulers
        .iter()
        .map(|s| engine.schedule_network(&network, s.as_ref()).report)
        .collect();

    println!(
        "{:20} {:>12} {:>12} {:>12} {:>8}",
        "layer", "random", "hybrid", "cosa", "speedup"
    );
    let mut speedups = Vec::new();
    for (i, entry) in network.layers.iter().enumerate() {
        let latency = |r: &NetworkReport| {
            r.layers[i]
                .scheduled
                .as_ref()
                .map(|s| s.latency_cycles)
                .unwrap_or(f64::INFINITY)
        };
        let (rnd, hyb, cosa) = (
            latency(&reports[0]),
            latency(&reports[1]),
            latency(&reports[2]),
        );
        let speedup = rnd / cosa;
        speedups.push(speedup);
        println!(
            "{:20} {rnd:>12.0} {hyb:>12.0} {cosa:>12.0} {speedup:>7.2}x",
            entry.layer.name()
        );
    }
    let geo = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
    println!("\ngeomean speedup vs random search: {geo:.2}x");
    Ok(())
}
