//! Dissect a schedule's on-chip traffic with the NoC simulator: iteration
//! classes, their transfer sets, and where the cycles go. Contrasts a
//! CoSA schedule against naive DRAM streaming.
//!
//! Run with: `cargo run --release --example noc_trace`

use cosa_repro::prelude::*;
use cosa_repro::spec::Dim;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let arch = Arch::simba_baseline();
    let layer = Layer::parse_paper_name("3_14_256_256_1")?;
    let sim = NocSimulator::new(&arch);

    // Schedule A: everything streamed from DRAM, sequential.
    let mut naive = Schedule::new(arch.num_levels());
    for d in Dim::ALL {
        for p in layer.prime_factors(d) {
            naive.push(arch.dram_level(), Loop::temporal(d, p));
        }
    }
    // Schedule B: CoSA.
    let cosa = CosaScheduler::new(&arch).schedule(&layer)?.schedule;

    for (name, schedule) in [("naive DRAM streaming", &naive), ("CoSA", &cosa)] {
        let report = sim.simulate(&layer, schedule)?;
        println!("== {name}");
        println!(
            "  total {:>13.0} cycles | compute {:>12} | dram stream {:>12.0} | PEs {}",
            report.total_cycles, report.compute_cycles, report.dram_cycles, report.pes_used
        );
        println!("  iteration classes (count x transfer set -> cycles):");
        for t in report.types.iter().take(8) {
            let tensors: Vec<&str> = cosa_repro::spec::DataTensor::ALL
                .iter()
                .filter(|v| t.resend[v.index()])
                .map(|v| v.short_name())
                .collect();
            println!(
                "    {:>12.0} x [{}] -> {} NoC cycles, {:.0} DRAM cycles",
                t.count,
                tensors.join("+"),
                t.noc_cycles,
                t.dram_cycles
            );
        }
        if report.types.len() > 8 {
            println!("    ... {} more classes", report.types.len() - 8);
        }
    }
    Ok(())
}
